open Linalg

let average_dm dataset =
  match dataset with
  | [] -> invalid_arg "Prune.strategy_adapt: empty dataset"
  | first :: _ ->
      let d, _ = Cmat.dims first in
      let acc = ref (Cmat.create d d) in
      List.iter (fun m -> acc := Cmat.add !acc m) dataset;
      Cmat.rscale (1. /. float_of_int (List.length dataset)) !acc

let eigvecs_desc dataset =
  let avg = average_dm dataset in
  let d, _ = Cmat.dims avg in
  let w, v = Eig.hermitian avg in
  let n = Array.length w in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n_qubits = log2 0 d in
  (* eigenvalues ascend; walk from the top *)
  List.init n (fun i ->
      let idx = n - 1 - i in
      (w.(idx), Qstate.Statevec.of_cvec n_qubits (Cvec.normalize (Cmat.col v idx))))

let strategy_adapt ?(energy = 0.95) dataset =
  let pairs = eigvecs_desc dataset in
  let total = List.fold_left (fun acc (w, _) -> acc +. Float.max 0. w) 0. pairs in
  let acc = ref 0. and keep = ref [] and done_ = ref false in
  List.iter
    (fun (w, v) ->
      if not !done_ then begin
        keep := v :: !keep;
        acc := !acc +. Float.max 0. w;
        if !acc >= energy *. total then done_ := true
      end)
    pairs;
  List.rev !keep

let strategy_adapt_top ~keep dataset =
  let pairs = eigvecs_desc dataset in
  List.filteri (fun i _ -> i < keep) (List.map snd pairs)

let strategy_const program ~variable_qubits =
  List.iter
    (fun q ->
      if not (List.mem q program.Program.input_qubits) then
        invalid_arg "Prune.strategy_const: qubit not in the current input")
    variable_qubits;
  Program.make ~input_qubits:variable_qubits program.Program.circuit

let prop_shot_reduction ~n_t =
  let rec pow acc k = if k = 0 then acc else pow (acc * 3) (k - 1) in
  pow 1 n_t
