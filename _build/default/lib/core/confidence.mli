(** Confidence estimation (Section 6.2, Theorem 3).

    Approximation accuracies across inputs are modelled as Beta-distributed;
    a counter-example is missed when its accuracy falls below the detection
    threshold [epsilon], so the confidence that a clean validation is valid
    for all inputs is [1 - P(acc < epsilon)]. *)

type t = {
  dist : Stats.Beta_dist.t;
  epsilon : float;
  confidence : float;
}

(** [estimate ?epsilon ~n_in ~n_sample accuracies] fits the Beta shape to
    benchmark accuracies with the mean pinned to Theorem 2's value and
    returns the Theorem 3 confidence ([epsilon] defaults to 0.5). An empty
    accuracy set falls back to a moment fit around the theoretical mean. *)
val estimate : ?epsilon:float -> n_in:int -> n_sample:int -> float array -> t

(** [required_samples ~n_in ~target_accuracy] inverts Theorem 2: the number
    of sampled inputs needed for the given average case-2 accuracy. *)
val required_samples : n_in:int -> target_accuracy:float -> int

(** [exhaustive_confidence ~space ~tested] is the baseline testing
    confidence the paper's Figure 1(b) plots: the probability that [tested]
    uniformly drawn distinct inputs from a space of [space] would have hit
    the single counter-example. *)
val exhaustive_confidence : space:float -> tested:float -> float
