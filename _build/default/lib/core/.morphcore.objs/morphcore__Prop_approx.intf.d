lib/core/prop_approx.mli: Approx Characterize Linalg Qstate
