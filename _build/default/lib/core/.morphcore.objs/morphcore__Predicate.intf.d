lib/core/predicate.mli: Linalg Qstate
