lib/core/prune.mli: Linalg Program Qstate
