lib/core/verify.mli: Approx Assertion Confidence Linalg Optimize Program Qstate Stats
