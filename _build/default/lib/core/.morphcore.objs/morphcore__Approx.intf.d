lib/core/approx.mli: Characterize Lazy Linalg
