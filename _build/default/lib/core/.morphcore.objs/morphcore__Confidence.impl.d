lib/core/confidence.ml: Approx Array Float Stats
