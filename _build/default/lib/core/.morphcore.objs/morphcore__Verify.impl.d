lib/core/verify.ml: Approx Array Assertion Clifford Cmat Confidence Cvec Cx Eig Float Hashtbl Lazy Linalg List Optimize Option Predicate Printf Program Qstate Stats
