lib/core/program.ml: Array Circuit Linalg List Qstate Sim Statevec
