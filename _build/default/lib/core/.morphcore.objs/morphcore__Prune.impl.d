lib/core/prune.ml: Array Cmat Cvec Eig Float Linalg List Program Qstate
