lib/core/approx.ml: Array Characterize Cmat Cx Eig Float Hsvec Lazy Linalg List Program Qstate Rmat
