lib/core/predicate.ml: Cmat Cx Float Linalg Printf Qstate
