lib/core/assertion.mli: Predicate
