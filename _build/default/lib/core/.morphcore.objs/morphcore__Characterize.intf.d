lib/core/characterize.mli: Clifford Linalg Program Qstate Sim Stats
