lib/core/prop_approx.ml: Approx Array Characterize Float Hashtbl List Program Qstate String
