lib/core/assertion.ml: List Predicate Printf String
