lib/core/characterize.ml: Array Clifford Cmat Linalg List Program Qstate Sim Stats Tomography
