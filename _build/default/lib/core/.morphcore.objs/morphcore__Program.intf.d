lib/core/program.mli: Circuit Linalg Qstate Sim Stats
