lib/core/confidence.mli: Stats
