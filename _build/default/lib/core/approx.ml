open Linalg

type recovery = [ `Least_squares | `Expectation ]

type t = {
  n_in : int;
  inputs : Cmat.t array;
  outputs : (int * Cmat.t array) list;
  basis : Rmat.t Lazy.t;
  solver : (float array -> float array) Lazy.t;
}

let build_basis ~n_in inputs =
  lazy
    (let d = 1 lsl n_in in
     let rows = Hsvec.dim d in
     let cols = Array.length inputs in
     let b = Rmat.create rows cols in
     Array.iteri
       (fun j input ->
         let v = Hsvec.encode input in
         Array.iteri (fun i x -> Rmat.set b i j x) v)
       inputs;
     b)

let make ~n_in ~inputs ~outputs =
  if Array.length inputs = 0 then invalid_arg "Approx.make: no samples";
  List.iter
    (fun (_, states) ->
      if Array.length states <> Array.length inputs then
        invalid_arg "Approx.make: sample count mismatch")
    outputs;
  let basis = build_basis ~n_in inputs in
  let solver = lazy (Rmat.lstsq_solver ~ridge:1e-9 (Lazy.force basis)) in
  { n_in; inputs; outputs; basis; solver }

let of_characterization (c : Characterize.t) =
  let n_in = Program.num_input_qubits c.Characterize.program in
  let samples = c.Characterize.samples in
  if Array.length samples = 0 then
    invalid_arg "Approx.of_characterization: no samples";
  let inputs = Array.map (fun s -> s.Characterize.input_dm) samples in
  let ids = List.map fst samples.(0).Characterize.traces in
  let outputs =
    List.map
      (fun id ->
        ( id,
          Array.map
            (fun s -> List.assoc id s.Characterize.traces)
            samples ))
      ids
  in
  make ~n_in ~inputs ~outputs

let n_sample t = Array.length t.inputs
let tracepoint_ids t = List.map fst t.outputs

let decompose ?(mode = `Least_squares) t rho =
  let d = 1 lsl t.n_in in
  let rd, cd = Cmat.dims rho in
  if rd <> d || cd <> d then invalid_arg "Approx.decompose: dimension mismatch";
  match mode with
  | `Expectation ->
      Array.map (fun sigma -> Cx.re (Cmat.hs_inner sigma rho)) t.inputs
  | `Least_squares -> (Lazy.force t.solver) (Hsvec.encode rho)

let combine states alpha =
  if Array.length states <> Array.length alpha then
    invalid_arg "Approx: coefficient count mismatch";
  let d, _ = Cmat.dims states.(0) in
  let acc = ref (Cmat.create d d) in
  Array.iteri
    (fun i a -> if a <> 0. then acc := Cmat.add !acc (Cmat.rscale a states.(i)))
    alpha;
  !acc

let input_of_alpha t alpha = combine t.inputs alpha

let tracepoint_of_alpha t ~tracepoint alpha =
  match List.assoc_opt tracepoint t.outputs with
  | Some states -> combine states alpha
  | None -> raise Not_found

let state_at ?mode ?(physical = true) t ~tracepoint rho_in =
  let alpha = decompose ?mode t rho_in in
  let raw = tracepoint_of_alpha t ~tracepoint alpha in
  if physical then Eig.project_psd raw else raw

let accuracy approx truth =
  let d, _ = Cmat.dims truth in
  let rec log2 acc k = if k <= 1 then acc else log2 (acc + 1) (k / 2) in
  let n = log2 0 d in
  Qstate.Density.fidelity
    (Qstate.Density.of_cmat n (Eig.project_psd approx))
    (Qstate.Density.of_cmat n (Eig.project_psd truth))

let theoretical_accuracy ~n_in ~n_sample =
  Float.min 1. (float_of_int n_sample /. float_of_int (1 lsl (n_in + 1)))

let samples_for_full_accuracy ~n_in = 1 lsl (n_in + 1)

let chain fs rho = List.fold_left (fun acc f -> f acc) rho fs
