(** Isomorphism-based approximation (Section 5.2, Theorem 1).

    From sampled pairs (input, tracepoint state) the approximation expresses
    any input as a real linear combination of the sampled inputs and carries
    the coefficients through the (linear, structure-preserving) program
    evolution:

    [rho_in ~ sum_i alpha_i sigma_in_i  ==>  rho_T ~ sum_i alpha_i sigma_T_i]

    Coefficient recovery supports two modes:
    - [`Least_squares] (default): minimize [|| rho - sum alpha_i sigma_i ||_F]
      over real alpha — exact whenever the input lies in the sampled span;
    - [`Expectation]: the paper's closed form [alpha_i = tr(sigma_i rho)],
      exact only for an orthonormal operator frame. *)

type recovery = [ `Least_squares | `Expectation ]

type t = private {
  n_in : int;  (** input qubits *)
  inputs : Linalg.Cmat.t array;  (** sampled input density matrices *)
  outputs : (int * Linalg.Cmat.t array) list;  (** per-tracepoint states *)
  basis : Linalg.Rmat.t Lazy.t;  (** HS-vectorized inputs for least squares *)
  solver : (float array -> float array) Lazy.t;
      (** cached normal-equation factorization *)
}

(** [make ~n_in ~inputs ~outputs] assembles an approximation directly from
    sampled pairs (used by experiments that characterize circuit segments). *)
val make :
  n_in:int ->
  inputs:Linalg.Cmat.t array ->
  outputs:(int * Linalg.Cmat.t array) list ->
  t

(** [of_characterization c] builds the approximation functions for every
    tracepoint recorded in the characterization. *)
val of_characterization : Characterize.t -> t

(** [n_sample t] is the number of sampled inputs. *)
val n_sample : t -> int

(** [tracepoint_ids t] lists the approximable tracepoints (including the
    reserved input id 0). *)
val tracepoint_ids : t -> int list

(** [decompose ?mode t rho] recovers the coefficient vector for an input
    density matrix. *)
val decompose : ?mode:recovery -> t -> Linalg.Cmat.t -> float array

(** [input_of_alpha t alpha] is [sum_i alpha_i sigma_in_i]. *)
val input_of_alpha : t -> float array -> Linalg.Cmat.t

(** [tracepoint_of_alpha t ~tracepoint alpha] is [sum_i alpha_i sigma_T_i].
    Raises [Not_found] for an unknown tracepoint. *)
val tracepoint_of_alpha : t -> tracepoint:int -> float array -> Linalg.Cmat.t

(** [state_at ?mode ?physical t ~tracepoint rho_in] approximates the
    tracepoint state under input [rho_in]. When [physical] is true (default)
    the result is projected back to a valid density matrix. *)
val state_at :
  ?mode:recovery -> ?physical:bool -> t -> tracepoint:int -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [accuracy approx_state truth] is the paper's approximation-accuracy
    metric: the Uhlmann fidelity between the (physically projected)
    approximate state and the ground truth. *)
val accuracy : Linalg.Cmat.t -> Linalg.Cmat.t -> float

(** [theoretical_accuracy ~n_in ~n_sample] is Theorem 2's case-2 value
    [min 1 (n_sample / 2^(n_in + 1))]. *)
val theoretical_accuracy : n_in:int -> n_sample:int -> float

(** [samples_for_full_accuracy ~n_in] is [2^(n_in + 1)]. *)
val samples_for_full_accuracy : n_in:int -> int

(** [chain fs rho] composes per-segment approximations (Figure 14's
    intermediate-tracepoint optimization): each function maps a segment
    input to the segment output, applied left to right. *)
val chain : (Linalg.Cmat.t -> Linalg.Cmat.t) list -> Linalg.Cmat.t -> Linalg.Cmat.t
