lib/stabilizer/tableau.ml: Array Circuit Cmat Linalg List Printf Qstate Stats String
