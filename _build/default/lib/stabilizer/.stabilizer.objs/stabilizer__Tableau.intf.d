lib/stabilizer/tableau.mli: Circuit Linalg Stats
