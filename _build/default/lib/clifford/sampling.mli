(** Input-state sampling for the characterization phase (Section 5.1 of the
    paper).

    Three families are supported:
    - [Basis]: computational basis states (the paper's cheap baseline in the
      Figure 15a ablation);
    - [Clifford]: states prepared by shallow random Clifford-style circuits
      (phase + entangling + Hadamard stages in the spirit of the
      Bravyi-Maslov Hadamard-free decomposition the paper cites) — more
      expressive because they carry superposition and entanglement;
    - [Haar]: Haar-random pure states (used for test inputs and ablations;
      prepared directly rather than by a circuit). *)

type kind = Basis | Clifford | Haar

val kind_to_string : kind -> string

(** [prep_circuit rng kind n ~index] builds the preparation circuit of the
    [index]-th sampled input on [n] qubits. [Basis] enumerates bitstrings in
    order; [Clifford] and [Haar] draw fresh random circuits. *)
val prep_circuit : Stats.Rng.t -> kind -> int -> index:int -> Circuit.t

(** [state rng kind n ~index] is the prepared input state. *)
val state : Stats.Rng.t -> kind -> int -> index:int -> Qstate.Statevec.t

(** [sample_set rng kind n ~count] prepares [count] inputs, returning each
    with its preparation circuit. *)
val sample_set :
  Stats.Rng.t -> kind -> int -> count:int -> (Circuit.t * Qstate.Statevec.t) list

(** [haar_state rng n] draws a Haar-random pure state directly (Gaussian
    amplitudes, normalized). *)
val haar_state : Stats.Rng.t -> int -> Qstate.Statevec.t

(** [random_mixture rng states] draws a random convex mixture of the given
    pure states — by construction a "case 1" input that lies in the span of
    its components (Theorem 2). *)
val random_mixture : Stats.Rng.t -> Qstate.Statevec.t list -> Linalg.Cmat.t
