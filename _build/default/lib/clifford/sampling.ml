open Qstate

type kind = Basis | Clifford | Haar

let kind_to_string = function
  | Basis -> "basis"
  | Clifford -> "clifford"
  | Haar -> "haar"

let one_qubit_cliffords = [ []; [ "h" ]; [ "s" ]; [ "h"; "s" ]; [ "s"; "h" ]; [ "h"; "s"; "h" ] ]

let entangling_layer rng n c =
  if n < 2 then c
  else begin
    let order = Array.init n (fun i -> i) in
    Stats.Rng.shuffle rng order;
    let c = ref c in
    let i = ref 0 in
    while !i + 1 < n do
      if Stats.Rng.bool rng then c := Circuit.cx order.(!i) order.(!i + 1) !c;
      i := !i + 2
    done;
    !c
  end

let clifford_circuit rng n =
  (* phase stage, entangling stage, Hadamard stage - repeated; shallow depth
     linear in n per Bravyi-Maslov *)
  let depth = max 2 ((n / 2) + 1) in
  let c = ref (Circuit.empty n) in
  for _ = 1 to depth do
    for q = 0 to n - 1 do
      let names =
        List.nth one_qubit_cliffords (Stats.Rng.int rng (List.length one_qubit_cliffords))
      in
      List.iter (fun name -> c := Circuit.gate name [ q ] !c) names
    done;
    c := entangling_layer rng n !c
  done;
  !c

let haar_like_circuit rng n =
  let depth = n + 1 in
  let c = ref (Circuit.empty n) in
  for _ = 1 to depth do
    for q = 0 to n - 1 do
      let th = Stats.Rng.uniform rng 0. Float.pi in
      let ph = Stats.Rng.uniform rng 0. (2. *. Float.pi) in
      let l = Stats.Rng.uniform rng 0. (2. *. Float.pi) in
      c := Circuit.u3 th ph l q !c
    done;
    c := entangling_layer rng n !c
  done;
  !c

let basis_circuit n ~index =
  let d = 1 lsl n in
  let k = ((index mod d) + d) mod d in
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    if (k lsr q) land 1 = 1 then c := Circuit.x q !c
  done;
  !c

let prep_circuit rng kind n ~index =
  match kind with
  | Basis -> basis_circuit n ~index
  | Clifford -> clifford_circuit rng n
  | Haar -> haar_like_circuit rng n

let state rng kind n ~index =
  let c = prep_circuit rng kind n ~index in
  (Sim.Engine.run ~rng c).Sim.Engine.state

let sample_set rng kind n ~count =
  List.init count (fun index ->
      let c = prep_circuit rng kind n ~index in
      let st = (Sim.Engine.run ~rng c).Sim.Engine.state in
      (c, st))

let haar_state rng n =
  let d = 1 lsl n in
  let v =
    Linalg.Cvec.init d (fun _ ->
        Linalg.Cx.make
          (Stats.Rng.gaussian rng ~mu:0. ~sigma:1.)
          (Stats.Rng.gaussian rng ~mu:0. ~sigma:1.))
  in
  Statevec.of_cvec n (Linalg.Cvec.normalize v)

let random_mixture rng states =
  match states with
  | [] -> invalid_arg "Sampling.random_mixture: empty list"
  | first :: _ ->
      let d = Statevec.dim first in
      let weights = List.map (fun _ -> Stats.Rng.float rng 1.) states in
      let total = List.fold_left ( +. ) 0. weights in
      let acc = ref (Linalg.Cmat.create d d) in
      List.iter2
        (fun w st ->
          let v = Statevec.to_cvec st in
          acc := Linalg.Cmat.add !acc (Linalg.Cmat.rscale (w /. total) (Linalg.Cmat.outer v v)))
        weights states;
      !acc
