lib/clifford/sampling.mli: Circuit Linalg Qstate Stats
