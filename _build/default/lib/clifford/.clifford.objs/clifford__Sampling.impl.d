lib/clifford/sampling.ml: Array Circuit Float Linalg List Qstate Sim Statevec Stats
