(* Table 4: verification success rate and overhead for NDD, Quito and
   MorphQPV on the five benchmarks, swept over program size. Bugs are
   phase-gate mutants (Section 8.2); each baseline tests 5 inputs with 1000
   shots. Overhead is the number of quantum operations added by the
   verification (x 10^3), following the paper's accounting:
     Quito: one readout per shot;
     NDD:   discrimination gates per shot (O(1) for classical expected
            states, ~18 * 4^n_t for general states);
     MorphQPV: the characterization pass (Strategy-prop probability
            measurements for QL/QNN; tomography restricted to a 3-qubit
            assertion window otherwise). *)

open Morphcore

let mutants_per_cell = 6
let tests = 5
let shots = 1000

let tracepoint_width program tp =
  match List.assoc_opt tp (Circuit.tracepoints program.Program.circuit) with
  | Some qs -> List.length qs
  | None -> 1

let morph_overhead_kops name program count =
  let gates = Circuit.gate_count program.Program.circuit in
  match name with
  | "QL" | "QNN" ->
      (* Strategy-prop: one setting, [shots] readouts per sampled input *)
      float_of_int (count * shots * (gates + 1)) /. 1e3
  | _ ->
      let _, last = Util.first_last_tracepoints program in
      let window = min 3 (tracepoint_width program last) in
      let settings = Tomography.State_tomo.settings_count window in
      let tomo_shots = 100 in
      float_of_int (count * settings * tomo_shots * (gates + 1)) /. 1e3

let run () =
  Util.header "Table 4: success rate (%) and overhead (x10^3 ops)";
  Util.row "(QEC programs cap the code distance at 5 — 9 physical qubits — so the";
  Util.row " full-register tracepoint states stay tractable; rows above the cap repeat it)";
  Util.row "%-6s %-4s | %-8s %-8s %-8s | %-12s %-12s %-12s" "bench" "n"
    "NDD" "Quito" "Morph" "NDD-ops" "Quito-ops" "Morph-ops";
  List.iter
    (fun name ->
      List.iter
        (fun n ->
          let rng = Stats.Rng.make (Hashtbl.hash (name, n)) in
          let reference = Util.cap_input_qubits (Util.benchmark_program rng name n) ~max_inputs:4 in
          let _, last = Util.first_last_tracepoints reference in
          let n_in = Program.num_input_qubits reference in
          let count = min 32 (Approx.samples_for_full_accuracy ~n_in) in
          let ndd_supported = name <> "QNN" in
          let detect = Util.deviation_detector ~probes:8 rng ~reference ~count in
          let ndd_hits = ref 0 and quito_hits = ref 0 and morph_hits = ref 0 in
          let actual_mutants = ref 0 in
          for _ = 1 to mutants_per_cell do
            match Util.nonequivalent_mutant rng reference with
            | None -> ()
            | Some candidate ->
            incr actual_mutants;
            if ndd_supported then begin
              let kind = if name = "QL" then Baselines.Ndd.Classical else Baselines.Ndd.General in
              (* NDD prepares superposition test states for general-state
                 assertions, basis keys for the classical lock *)
              let inputs =
                if kind = Baselines.Ndd.General then
                  Some
                    (List.init tests (fun index ->
                         Clifford.Sampling.state rng Clifford.Sampling.Clifford
                           n_in ~index))
                else None
              in
              let r =
                Baselines.Ndd.check ~rng ~shots ~tests ?inputs ~kind
                  ~tracepoint:last ~reference ~candidate ()
              in
              if r.Baselines.Verifier.bug_found then incr ndd_hits
            end;
            let r =
              Baselines.Quito.check ~rng ~shots ~tests ~reference ~candidate ()
            in
            if r.Baselines.Verifier.bug_found then incr quito_hits;
            if detect candidate > 1e-4 then incr morph_hits
          done;
          let denom = max 1 !actual_mutants in
          let pct hits = 100. *. float_of_int hits /. float_of_int denom in
          let n_t = tracepoint_width reference last in
          let ndd_kind =
            if name = "QL" then Baselines.Ndd.Classical else Baselines.Ndd.General
          in
          let ndd_ops =
            float_of_int
              (tests * shots * Baselines.Ndd.discrimination_gates ~kind:ndd_kind ~n_t)
            /. 1e3
          in
          let quito_ops = float_of_int (tests * shots) /. 1e3 in
          let morph_ops = morph_overhead_kops name reference count in
          let ndd_col =
            if ndd_supported then Printf.sprintf "%.0f" (pct !ndd_hits) else "/"
          in
          let ndd_ops_col =
            if ndd_supported then Printf.sprintf "%.1f" ndd_ops else "/"
          in
          Util.row "%-6s %-4d | %-8s %-8.0f %-8.0f | %-12s %-12.1f %-12.1f" name n
            ndd_col (pct !quito_hits) (pct !morph_hits) ndd_ops_col quito_ops
            morph_ops)
        [ 3; 5; 7 ])
    Util.benchmark_names
