bench/main.mli:
