bench/exp_fig13.ml: Approx Array Benchmarks Characterize Float List Morphcore Program Prune Qstate Sim Stats Util
