bench/exp_fig11.ml: Approx Benchmarks Characterize Clifford List Morphcore Printf Program Sim Stats String Tomography Util
