bench/exp_fig7.ml: Approx Array Assertion Baselines Benchmarks Characterize List Morphcore Predicate Program Stats Util Verify
