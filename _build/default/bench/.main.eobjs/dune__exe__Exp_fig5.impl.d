bench/exp_fig5.ml: Approx Array Benchmarks Characterize Clifford List Morphcore Program Stats Util
