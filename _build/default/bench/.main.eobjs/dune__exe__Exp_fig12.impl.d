bench/exp_fig12.ml: Approx Characterize Confidence List Morphcore Program Stats Util Verify
