bench/exp_fig6.ml: Approx Array Benchmarks Characterize Clifford Format Morphcore Program Stats Util Verify
