bench/exp_fig15.ml: Approx Assertion Benchmarks Characterize Clifford List Morphcore Predicate Program Stats Util Verify
