bench/exp_table4.ml: Approx Baselines Circuit Clifford Hashtbl List Morphcore Printf Program Stats Tomography Util
