bench/util.ml: Approx Array Benchmarks Characterize Circuit Clifford Linalg List Morphcore Printf Program Prune Qstate Stats Unix Verify
