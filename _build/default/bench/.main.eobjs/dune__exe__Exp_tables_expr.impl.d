bench/exp_tables_expr.ml: List Util
