bench/exp_fig1b.ml: Confidence List Morphcore Util
