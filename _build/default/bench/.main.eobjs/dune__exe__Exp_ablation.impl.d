bench/exp_ablation.ml: Approx Array Characterize Circuit Clifford Float List Morphcore Program Qstate Stats Tomography Util
