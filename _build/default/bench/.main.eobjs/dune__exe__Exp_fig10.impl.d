bench/exp_fig10.ml: Approx Array Assertion Baselines Benchmarks Characterize Cmat Cvec Cx Linalg List Morphcore Predicate Program Stats Util Verify
