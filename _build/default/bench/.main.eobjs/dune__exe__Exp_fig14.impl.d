bench/exp_fig14.ml: Approx Array Characterize Circuit Clifford Linalg List Morphcore Program Sim Stats Util
