bench/exp_table6.ml: Baselines Clifford Hashtbl List Morphcore Printf Stats Util
