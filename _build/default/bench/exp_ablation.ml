(* Extra ablations called out in DESIGN.md:
   - alpha recovery: least squares vs the paper's expectation closed form;
   - PSD projection in shot-limited tomography reconstruction. *)

open Morphcore

let ablation_alpha () =
  Util.header "Ablation: alpha recovery — least squares vs expectation";
  let rng = Stats.Rng.make 161 in
  let n = 3 in
  let program =
    Program.make
      Circuit.(
        empty n |> h 0 |> cx 0 1 |> t_gate 1 |> cx 1 2 |> rz 0.4 2
        |> tracepoint 1 (List.init n (fun q -> q)))
  in
  Util.row "%-10s %-16s %-16s" "N_sample" "least-squares" "expectation";
  List.iter
    (fun count ->
      let ch = Characterize.run ~rng program ~count in
      let approx = Approx.of_characterization ch in
      let acc mode =
        Util.mean
          (Array.init 8 (fun _ ->
               let input = Clifford.Sampling.haar_state rng n in
               let truth = List.assoc 1 (Program.run_traces ~rng program ~input) in
               let predicted =
                 Approx.state_at ~mode approx ~tracepoint:1 (Util.dm_of_state input)
               in
               Approx.accuracy predicted truth))
      in
      Util.row "%-10d %-16.4f %-16.4f" count (acc `Least_squares) (acc `Expectation))
    [ 4; 8; 16 ]

let ablation_psd () =
  Util.header "Ablation: PSD projection in shot-limited tomography";
  let rng = Stats.Rng.make 162 in
  Util.row "%-10s %-18s %-18s" "shots" "fidelity w/ proj" "fidelity w/o proj";
  let truth = Util.dm_of_state (Clifford.Sampling.haar_state rng 2) in
  List.iter
    (fun shots ->
      let fid project =
        Util.mean
          (Array.init 10 (fun _ ->
               let r = Tomography.State_tomo.run ~project rng ~shots ~truth () in
               Approx.accuracy r.Tomography.State_tomo.rho truth))
      in
      Util.row "%-10d %-18.4f %-18.4f" shots (fid true) (fid false))
    [ 50; 200; 1000; 5000 ]

let ablation_mitigation () =
  Util.header "Ablation: readout-error mitigation in basis-probability characterization";
  let rng = Stats.Rng.make 163 in
  let readout = 0.08 in
  Util.row "symmetric per-qubit flip probability %.2f" readout;
  Util.row "%-8s %-22s %-22s" "qubits" "TV error, raw" "TV error, mitigated";
  List.iter
    (fun n ->
      let mit = Tomography.Mitigation.exact n ~readout in
      let errs_raw = ref [] and errs_fix = ref [] in
      for _ = 1 to 6 do
        let st = Clifford.Sampling.haar_state rng n in
        let true_p = Qstate.Statevec.probs st in
        (* observed distribution under readout flips, 4000 shots *)
        let shots = 4000 in
        let counts = Array.make (1 lsl n) 0 in
        for _ = 1 to shots do
          let k = ref (Qstate.Statevec.sample rng st) in
          for q = 0 to n - 1 do
            if Stats.Rng.float rng 1. < readout then k := !k lxor (1 lsl q)
          done;
          counts.(!k) <- counts.(!k) + 1
        done;
        let observed =
          Array.map (fun c -> float_of_int c /. float_of_int shots) counts
        in
        let fixed =
          Tomography.Mitigation.apply mit observed
        in
        let tv a b =
          let acc = ref 0. in
          Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
          !acc /. 2.
        in
        errs_raw := tv observed true_p :: !errs_raw;
        errs_fix := tv fixed true_p :: !errs_fix
      done;
      Util.row "%-8d %-22.4f %-22.4f" n
        (Util.mean (Array.of_list !errs_raw))
        (Util.mean (Array.of_list !errs_fix)))
    [ 2; 3; 4 ]

let run () =
  ablation_alpha ();
  ablation_psd ();
  ablation_mitigation ()
