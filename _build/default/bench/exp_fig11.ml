(* Figure 11(a): time to obtain a tracepoint state per input —
   isomorphism-based approximation vs classical simulation vs state
   tomography vs process tomography. Approximation and simulation are
   measured wall-clock; the tomography columns report estimated hardware
   time from the paper's IBMQ gate/readout latencies (the quantity that
   actually dominates on a device).

   Figure 11(b): average approximation accuracy of the five benchmark
   algorithms vs the number of sampled inputs. *)

open Morphcore

let fig11a () =
  Util.header "Figure 11(a): time to obtain a tracepoint state under one input";
  Util.row "(teleportation: total qubits = 3 * input qubits, so simulation pays for";
  Util.row " the full register while the approximation pays only for the input)";
  Util.row "%-8s %-8s %-14s %-14s %-16s %-16s" "qubits" "inputs" "approx (s)"
    "simulate (s)" "state-tomo (s)" "process-tomo (s)";
  let rng = Stats.Rng.make 111 in
  List.iter
    (fun payload ->
      let n = 3 * payload in
      let program =
        Program.make
          ~input_qubits:(Benchmarks.Teleport.input_qubits payload)
          (Benchmarks.Teleport.multi payload)
      in
      let count = min 32 (Approx.samples_for_full_accuracy ~n_in:payload) in
      let ch = Characterize.run ~rng ~trajectories:8 program ~count in
      let approx = Approx.of_characterization ch in
      let rho_in = Util.dm_of_state (Clifford.Sampling.haar_state rng payload) in
      (* force the one-time factorization before timing the per-input cost *)
      ignore (Approx.state_at ~physical:false approx ~tracepoint:2 rho_in);
      let reps = 5 in
      let (), t_approx =
        Util.time (fun () ->
            for _ = 1 to reps do
              ignore (Approx.state_at ~physical:false approx ~tracepoint:2 rho_in)
            done)
      in
      let input = Clifford.Sampling.haar_state rng payload in
      let (), t_sim =
        Util.time (fun () ->
            for _ = 1 to reps do
              ignore (Program.run_traces ~rng program ~input)
            done)
      in
      (* hardware estimate for tomography of the payload-sized tracepoint *)
      let shots = 1000 in
      let settings = Tomography.State_tomo.settings_count payload in
      let circuit_seconds =
        let m = Sim.Cost.create () in
        Sim.Cost.record_circuit m program.Program.circuit ~shots:1;
        Sim.Cost.hardware_seconds m
      in
      let t_state_tomo = float_of_int (settings * shots) *. circuit_seconds in
      let _, proc_shots = Tomography.Process_tomo.cost ~n:payload ~shots in
      let t_process_tomo = float_of_int proc_shots *. circuit_seconds in
      Util.row "%-8d %-8d %-14.6f %-14.6f %-16.4f %-16.1f" n payload
        (t_approx /. float_of_int reps)
        (t_sim /. float_of_int reps)
        t_state_tomo t_process_tomo)
    [ 2; 3; 4; 5 ]

let fig11b () =
  Util.header "Figure 11(b): approximation accuracy of the five benchmarks vs N_sample";
  let n = 4 in
  let rng = Stats.Rng.make 112 in
  let budgets = [ 2; 4; 8; 16; 32 ] in
  Util.row "%-8s %s" "N_sample"
    (String.concat " " (List.map (Printf.sprintf "%-10s") Util.benchmark_names));
  let programs =
    List.map
      (fun name ->
        let p = Util.benchmark_program rng name n in
        (name, Util.cap_input_qubits p ~max_inputs:4))
      Util.benchmark_names
  in
  List.iter
    (fun count ->
      let cells =
        List.map
          (fun (_, program) ->
            let ch =
              Characterize.run ~rng ~kind:Clifford.Sampling.Clifford
                ~trajectories:8 program ~count
            in
            let approx = Approx.of_characterization ch in
            let _, last = Util.first_last_tracepoints program in
            Util.probe_accuracy ~count:6 rng approx program ~tracepoint:last)
          programs
      in
      Util.row "%-8d %s" count
        (String.concat " " (List.map (Printf.sprintf "%-10.4f") cells)))
    budgets;
  Util.row "(theory, case 2: N_sample / 2^(n+1) with n = 4 input qubits)"

let run () =
  fig11a ();
  fig11b ()
