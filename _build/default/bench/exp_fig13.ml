(* Figure 13: pruning strategies of the characterization (Section 5.4).

   (a) sampled-input reduction: Strategy-adapt prunes the QNN's input space
       to the dominant eigenvectors of the training set; Strategy-const
       holds half of the Shor counting register constant.
   (b) shot reduction: Strategy-prop measures only the asserted property
       (basis probabilities) instead of full tomography. *)

open Morphcore

let fig13a () =
  Util.header "Figure 13(a): sampled inputs with and without pruning";
  let rng = Stats.Rng.make 131 in
  (* QNN + Strategy-adapt *)
  let n = 4 in
  let qnn = Benchmarks.Qnn.init rng ~num_qubits:n ~layers:2 in
  let flowers = Benchmarks.Iris.generate rng ~count:40 in
  let dataset =
    Array.to_list
      (Array.map
         (fun f ->
           let c = Benchmarks.Qnn.circuit qnn ~features:f.Benchmarks.Iris.features in
           let traces = Sim.Engine.tracepoint_states c in
           List.assoc 1 traces)
         flowers)
  in
  let baseline = Approx.samples_for_full_accuracy ~n_in:n in
  let adapt95 = Prune.strategy_adapt ~energy:0.95 dataset in
  let adapt99 = Prune.strategy_adapt ~energy:0.99 dataset in
  Util.row "QNN (%d qubits): baseline %d samples; Strategy-adapt: %d (95%% energy, %.1fx), %d (99%% energy, %.1fx)"
    n baseline
    (List.length adapt95)
    (float_of_int baseline /. float_of_int (List.length adapt95))
    (List.length adapt99)
    (float_of_int baseline /. float_of_int (List.length adapt99));
  (* verify the pruned characterization still predicts dataset inputs well *)
  let program = Program.make (Benchmarks.Qnn.body qnn) in
  let ch = Characterize.run ~rng ~inputs:adapt95 program ~count:0 in
  let approx = Approx.of_characterization ch in
  let accs =
    Array.map
      (fun f ->
        let traces =
          Sim.Engine.tracepoint_states
            (Benchmarks.Qnn.circuit qnn ~features:f.Benchmarks.Iris.features)
        in
        let rho_in = List.assoc 1 traces in
        let truth = List.assoc 4 traces in
        Approx.accuracy (Approx.state_at approx ~tracepoint:4 rho_in) truth)
      flowers
  in
  Util.row "  accuracy on dataset inputs with pruned samples: mean fidelity %.3f" (Util.mean accs);
  (* what the QNN assertion actually checks is the Z expectation of qubit 0:
     property-level accuracy is much higher than full-state fidelity *)
  let z0 = Qstate.Pauli.single n 0 Qstate.Pauli.Z in
  let z_errs =
    Array.map
      (fun f ->
        let traces =
          Sim.Engine.tracepoint_states
            (Benchmarks.Qnn.circuit qnn ~features:f.Benchmarks.Iris.features)
        in
        let rho_in = List.assoc 1 traces in
        let truth = List.assoc 4 traces in
        Float.abs
          (Qstate.Pauli.expectation_dm z0 (Approx.state_at approx ~tracepoint:4 rho_in)
          -. Qstate.Pauli.expectation_dm z0 truth))
      flowers
  in
  Util.row "  prediction-expectation error with pruned samples: mean %.3f (range of E_Z is [-1,1])"
    (Util.mean z_errs);
  (* Shor + Strategy-const *)
  let counting = 6 in
  let shor = Program.make (Benchmarks.Shor_period.circuit ~counting ~phase:0.25) in
  let baseline = Approx.samples_for_full_accuracy ~n_in:(counting + 1) in
  let const_prog =
    Prune.strategy_const shor ~variable_qubits:(List.init (counting / 2) (fun q -> q))
  in
  let pruned = Approx.samples_for_full_accuracy ~n_in:(Program.num_input_qubits const_prog) in
  Util.row "Shor (%d qubits): baseline %d samples; Strategy-const (half register fixed): %d (%.1fx)"
    (counting + 1) baseline pruned
    (float_of_int baseline /. float_of_int pruned)

let fig13b () =
  Util.header "Figure 13(b): shots with and without Strategy-prop";
  let rng = Stats.Rng.make 132 in
  Util.row "%-8s %-18s %-18s %-10s" "qubits" "full tomo shots" "probs-only shots" "reduction";
  List.iter
    (fun n ->
      let program = Util.benchmark_program rng "Shor" n in
      let shots = 1000 in
      let full =
        (Characterize.run ~rng
           ~mode:(Characterize.Tomography { shots; project = true })
           program ~count:2).Characterize.cost
      in
      let probs =
        (Characterize.run ~rng ~mode:(Characterize.Probs_only { shots }) program
           ~count:2).Characterize.cost
      in
      Util.row "%-8d %-18d %-18d %-10.1fx" n full.Sim.Cost.shots
        probs.Sim.Cost.shots
        (float_of_int full.Sim.Cost.shots /. float_of_int probs.Sim.Cost.shots))
    [ 3; 4; 5; 6 ]

let run () =
  fig13a ();
  fig13b ()
