(* Figure 10: sampled inputs needed to identify the corrupted QRAM cell.

   The QRAM specification is itself a linear (isomorphic) map from the
   address state to the data state, A = sum_i |theta_i><i|, so MorphQPV can
   state an input-independent guarantee  rho_T2 = A rho_T1 A^dagger  and
   search for its violation after one characterization pass. Baselines test
   one address at a time. *)

open Morphcore
open Linalg

(* The QRAM specification as a linear map on the address state: since the
   address register stays entangled with the data qubit, the reduced data
   state under address distribution {p_i} is sum_i p_i |theta_i><theta_i| —
   a linear (and thus isomorphism-compatible) function of rho_in. *)
let qram_assertion table =
  let cell_state theta =
    let v = Cvec.of_list [ Cx.of_float (cos theta); Cx.of_float (sin theta) ] in
    Cmat.outer v v
  in
  let cells = Array.map cell_state table in
  let spec env =
    let rho_in = env 1 in
    let expected = ref (Cmat.create 2 2) in
    Array.iteri
      (fun i cell ->
        let p = Cx.re (Cmat.get rho_in i i) in
        expected := Cmat.add !expected (Cmat.rscale p cell))
      cells;
    Cmat.frob_norm (Cmat.sub (env 2) !expected) -. 0.05
  in
  Assertion.make ~name:"qram spec"
    ~assumes:[]
    ~guarantees:[ Predicate.Custom ("output = sum_i p_i |theta_i><theta_i|", spec) ]
    ()

let morph_detects rng program assertion count =
  let ch = Characterize.run ~rng program ~count in
  let approx = Approx.of_characterization ch in
  let options = { Verify.default_options with budget = 2000; restarts = 2; projection = `Trace } in
  match Verify.validate ~options ~rng ~confirm:program approx assertion with
  | Verify.Violated _ -> true
  | Verify.Verified _ -> false

let run () =
  Util.header "Figure 10: executions to identify the corrupted QRAM cell";
  Util.row "%-8s %-12s %-12s %-12s %-12s" "addr" "cells" "Quito" "NDD" "MorphQPV";
  List.iter
    (fun a ->
      let seeds = [ 7; 17; 27 ] in
      let avg f = Util.mean (Array.of_list (List.map f seeds)) in
      let build seed =
        let rng = Stats.Rng.make (1000 + seed) in
        let table = Benchmarks.Qram.uniform_table rng a in
        let bad_addr = (1 lsl a) - 2 in
        let buggy =
          Benchmarks.Qram.make ~corrupt:(bad_addr, table.(bad_addr) +. 1.3) ~table a
        in
        let clean = Benchmarks.Qram.make ~table a in
        let prog q =
          Program.make ~input_qubits:q.Benchmarks.Qram.addr_qubits
            q.Benchmarks.Qram.circuit
        in
        (table, prog clean, prog buggy)
      in
      let quito =
        avg (fun seed ->
            let rng = Stats.Rng.make seed in
            let _, reference, candidate = build seed in
            match Baselines.Quito.executions_to_find ~rng ~reference ~candidate () with
            | Some n -> float_of_int (2 * n)
            | None -> float_of_int (1 lsl (a + 1)))
      in
      let ndd =
        avg (fun seed ->
            let rng = Stats.Rng.make (seed + 50) in
            let _, reference, candidate = build seed in
            match
              Baselines.Ndd.executions_to_find ~rng ~tracepoint:2 ~reference
                ~candidate ()
            with
            | Some n -> float_of_int (2 * n)
            | None -> float_of_int (1 lsl (a + 1)))
      in
      let morph =
        avg (fun seed ->
            let rng = Stats.Rng.make (seed + 99) in
            let table, _, candidate = build seed in
            let assertion = qram_assertion table in
            match
              Util.min_samples_doubling ~start:2 ~cap:(1 lsl (a + 1))
                (fun count -> morph_detects rng candidate assertion count)
            with
            | Some n -> float_of_int n
            | None -> float_of_int (1 lsl (a + 2)))
      in
      Util.row "%-8d %-12d %-12.1f %-12.1f %-12.1f" a (1 lsl a) quito ndd morph)
    [ 2; 3; 4 ]
