(* Figure 14: approximation accuracy on the noisy simulator, improved by
   injecting intermediate tracepoints. With noise, characterizing the whole
   program end to end accumulates decoherence; characterizing shorter
   segments and chaining the per-segment approximations (rho_T2 =
   f2(f1(rho_T1))) recovers accuracy. *)

open Morphcore

(* split a circuit's gate list into [segments] consecutive sub-circuits *)
let split_circuit circuit segments =
  let gates =
    List.filter_map
      (function Circuit.Instr.Gate g -> Some g | _ -> None)
      (Circuit.instrs circuit)
  in
  let total = List.length gates in
  let n = Circuit.num_qubits circuit in
  let per = max 1 ((total + segments - 1) / segments) in
  let rec chunks acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | g :: rest ->
        if k = per then chunks (List.rev cur :: acc) [ g ] 1 rest
        else chunks acc (g :: cur) (k + 1) rest
  in
  List.map
    (fun gs ->
      let c = ref (Circuit.empty n) in
      c := Circuit.tracepoint 1 (List.init n (fun q -> q)) !c;
      List.iter (fun g -> c := Circuit.add (Circuit.Instr.Gate g) !c) gs;
      Circuit.tracepoint 2 (List.init n (fun q -> q)) !c)
    (chunks [] [] 0 gates)

(* rank-1 purification: intermediate states of the ideal program are pure,
   so snapping each chained reconstruction to its dominant eigenvector
   mitigates the depolarizing noise accumulated in that segment *)
let purify rho =
  let d, _ = Linalg.Cmat.dims rho in
  let w, v = Linalg.Eig.hermitian rho in
  let top = Linalg.Cvec.normalize (Linalg.Cmat.col v (Array.length w - 1)) in
  ignore d;
  Linalg.Cmat.outer top top

let noisy_accuracy rng circuit ~segments ~noise ~probes =
  let parts = split_circuit circuit segments in
  (* characterize each segment under noise with a full-span sample set
     (4^n samples: segment maps must be accurate on mixed inputs too) *)
  let n = Circuit.num_qubits circuit in
  let count = 1 lsl (2 * n) in
  let fs =
    List.map
      (fun seg ->
        let program = Program.make seg in
        let ch =
          Characterize.run ~rng ~kind:Clifford.Sampling.Haar ~noise
            ~trajectories:300 program ~count
        in
        let approx = Approx.of_characterization ch in
        fun rho ->
          purify (Approx.state_at ~physical:true approx ~tracepoint:2 rho))
      parts
  in
  (* ground truth: the IDEAL (noise-free) program output; the same probe
     inputs are used for every segment count to cut comparison variance *)
  let full_program = Program.make (List.hd (split_circuit circuit 1)) in
  let accs =
    Array.map
      (fun input ->
        let truth = List.assoc 2 (Program.run_traces ~rng full_program ~input) in
        let predicted = Approx.chain fs (Util.dm_of_state input) in
        Approx.accuracy predicted truth)
      probes
  in
  Util.mean accs

let run () =
  Util.header "Figure 14: noisy-simulator accuracy vs number of intermediate tracepoints";
  let rng = Stats.Rng.make 141 in
  (* deep circuits: the end-to-end state is close to fully mixed, so a
     single characterization span cannot recover the ideal state; shorter
     segments keep per-segment noise moderate and purification effective
     (we scale the per-gate rates x4 to reach the paper's deep-circuit
     regime with our shallower 4-qubit programs) *)
  let noise =
    Sim.Noise.make
      ~p1:(4. *. Sim.Noise.ibm_cairo.Sim.Noise.p1)
      ~p2:(4. *. Sim.Noise.ibm_cairo.Sim.Noise.p2)
      ()
  in
  let n = 4 in
  Util.row "noise model: 4x IBM-Cairo depolarizing (p1=%.4f p2=%.4f); accuracy vs the IDEAL state"
    noise.Sim.Noise.p1 noise.Sim.Noise.p2;
  Util.row "(random-state fidelity floor on 4 qubits is 1/16 = 0.0625)";
  Util.row "%-8s %-14s %-14s %-14s" "program" "0 intermediate" "1 intermediate" "3 intermediate";
  List.iter
    (fun name ->
      let program = Util.benchmark_program rng name n in
      (* double the body to reach a deep-circuit regime *)
      let circuit =
        let body = List.hd (split_circuit program.Program.circuit 1) in
        Circuit.append body body
      in
      let probes =
        Array.init 12 (fun _ ->
            Clifford.Sampling.haar_state rng (Circuit.num_qubits circuit))
      in
      let acc segments = noisy_accuracy rng circuit ~segments ~noise ~probes in
      Util.row "%-8s %-14.4f %-14.4f %-14.4f" name (acc 1) (acc 2) (acc 4))
    [ "Shor"; "XEB" ]
