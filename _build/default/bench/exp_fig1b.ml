(* Figure 1(b): confidence of exhaustive-testing verification vs the number
   of tested inputs for the 15-qubit quantum lock (14 key bits, 2^14 inputs,
   exactly one unexpected key), against MorphQPV's Theorem-3 confidence after
   one characterization pass. *)

open Morphcore

let run () =
  Util.header "Figure 1(b): confidence vs number of tested inputs (15-qubit quantum lock)";
  let key_bits = 14 in
  let space = float_of_int (1 lsl key_bits) in
  Util.row "input space: %.0f classical keys, 1 counter-example" space;
  Util.row "%-12s %-22s" "tests" "testing confidence (%)";
  List.iter
    (fun t ->
      let c = Confidence.exhaustive_confidence ~space ~tested:(float_of_int t) in
      Util.row "%-12d %-22.4f" t (100. *. c))
    [ 1; 10; 100; 1000; 5000; 8192; 15000; 16384 ];
  let half = Confidence.exhaustive_confidence ~space ~tested:1. *. 100. in
  Util.row "-> a single test yields %.4f%% confidence (paper: 0.006%%)" half;
  Util.row "-> 50%% confidence needs ~%d tests (paper: ~1.5e4)" (1 lsl (key_bits - 1));
  (* MorphQPV after characterizing with increasing sample budgets *)
  Util.row "";
  Util.row "%-12s %-22s" "N_sample" "MorphQPV confidence (%)  [Theorem 3, eps=0.5]";
  List.iter
    (fun n_sample ->
      let c = Confidence.estimate ~n_in:key_bits ~n_sample [||] in
      Util.row "%-12d %-22.4f" n_sample (100. *. c.Confidence.confidence))
    [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 15 ]
