(* Figure 12: estimated confidence (Theorem 3) vs the real success rate of
   verification, swept over the sampling budget. For each budget we
   (a) estimate confidence from the Beta fit of probe accuracies, and
   (b) measure the fraction of phase-gate mutants whose bug the
   approximation-based check actually detects. Theorem 3 is a lower bound,
   so measured success should sit above the estimate. *)

open Morphcore

let success_rate rng program ~tracepoint ~count ~mutants =
  let detect =
    Util.deviation_detector ~probes:8 ~tracepoints:[ tracepoint ] rng
      ~reference:program ~count
  in
  let detected = ref 0 and total = ref 0 in
  for m = 1 to mutants do
    ignore m;
    match Util.nonequivalent_mutant rng program with
    | None -> ()
    | Some candidate ->
        incr total;
        if detect candidate > 0.05 then incr detected
  done;
  float_of_int !detected /. float_of_int (max 1 !total)

let run () =
  Util.header "Figure 12: estimated confidence vs measured success rate (5-qubit programs)";
  let n = 5 in
  let rng = Stats.Rng.make 121 in
  List.iter
    (fun name ->
      let program =
        Util.cap_input_qubits (Util.benchmark_program rng name n) ~max_inputs:4
      in
      let n_in = Program.num_input_qubits program in
      let _, last = Util.first_last_tracepoints program in
      Util.row "";
      Util.row "%s (%d input qubits):" name n_in;
      Util.row "%-10s %-22s %-20s" "N_sample" "estimated confidence" "measured success";
      List.iter
        (fun count ->
          let ch = Characterize.run ~rng program ~count in
          let approx = Approx.of_characterization ch in
          let accs =
            Verify.probe_accuracies ~rng ~count:12 approx program ~tracepoint:last
          in
          let est = Confidence.estimate ~n_in ~n_sample:count accs in
          let success =
            success_rate rng program ~tracepoint:last ~count ~mutants:8
          in
          Util.row "%-10d %-22.3f %-20.3f" count est.Confidence.confidence success)
        [ 4; 8; 16; 32 ])
    [ "QEC"; "Shor" ]
