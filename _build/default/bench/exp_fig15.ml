(* Figure 15(a): ablation of the input-sampling family — Clifford-group
   states vs computational basis states (plus Haar as an extra lens).
   Basis-state samples only span the diagonal of the Hermitian space, so
   their accuracy plateaus; Clifford samples carry superposition and
   entanglement and reach full accuracy with 2^(n+1) samples.

   Figure 15(b): validation time of the constrained optimization for the
   SGD (Adam), genetic, annealing and quadratic-programming solvers. *)

open Morphcore

let fig15a () =
  Util.header "Figure 15(a): Clifford vs basis vs Haar input sampling";
  let rng = Stats.Rng.make 151 in
  let n = 4 in
  let program =
    Util.cap_input_qubits (Util.benchmark_program rng "Shor" (n + 1)) ~max_inputs:n
  in
  let _, last = Util.first_last_tracepoints program in
  Util.row "Shor core, %d input qubits; probe accuracy at the output tracepoint" n;
  Util.row "%-10s %-12s %-12s %-12s" "N_sample" "basis" "clifford" "haar";
  List.iter
    (fun count ->
      let acc kind =
        let ch = Characterize.run ~rng ~kind program ~count in
        let approx = Approx.of_characterization ch in
        Util.probe_accuracy ~count:6 rng approx program ~tracepoint:last
      in
      Util.row "%-10d %-12.4f %-12.4f %-12.4f" count
        (acc Clifford.Sampling.Basis)
        (acc Clifford.Sampling.Clifford)
        (acc Clifford.Sampling.Haar))
    [ 4; 8; 16; 32; 64 ]

let fig15b () =
  Util.header "Figure 15(b): validation time by solver";
  let rng = Stats.Rng.make 152 in
  let k = 4 in
  let lock = Benchmarks.Quantum_lock.make ~key:1 ~unexpected_key:6 k in
  let program =
    Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
      lock.Benchmarks.Quantum_lock.circuit
  in
  let assertion =
    Assertion.make ~name:"lock"
      ~assumes:[ Predicate.Diag_in_range (1, 1, 0., 0.01) ]
      ~guarantees:[ Predicate.Equals_const (2, Util.basis_dm 1 0) ]
      ()
  in
  Util.row "%-10s %-12s %-12s %-12s %-12s" "N_sample" "sgd-adam" "annealing" "genetic" "quadratic";
  List.iter
    (fun count ->
      let ch = Characterize.run ~rng program ~count in
      let approx = Approx.of_characterization ch in
      let time_of solver =
        let options =
          { Verify.default_options with solver; budget = 1500; restarts = 1; projection = `Trace }
        in
        let _, t =
          Util.time (fun () -> Verify.validate ~options ~rng approx assertion)
        in
        t
      in
      Util.row "%-10d %-12.3f %-12.3f %-12.3f %-12.3f" count (time_of `Adam)
        (time_of `Anneal) (time_of `Genetic) (time_of `Qp))
    [ 8; 16; 32 ]

let run () =
  fig15a ();
  fig15b ()
