(* Tables 2 and 5: expressiveness comparisons. Qualitative feature matrices
   derived from what each implemented verifier can actually observe
   (see lib/baselines). *)

let table2 () =
  Util.header "Table 2: expressiveness vs assertion techniques";
  let rows =
    [
      ("Verified object", [ "Prob. dist."; "Mixed state"; "Mixed state"; "Mixed state"; "Mixed state & Evolution" ]);
      ("Comparison", [ "Part"; "Equal & In"; "Equal & In"; "Equal & In"; "Full" ]);
      ("Interpretability", [ "Part"; "No"; "No"; "No"; "Full" ]);
      ("Debug feedback circuits", [ "No"; "No"; "No"; "Full"; "Full" ]);
    ]
  in
  Util.row "%-26s %-14s %-14s %-14s %-14s %-24s" "" "Stat" "Proj" "NDD" "SR" "MorphQPV";
  List.iter
    (fun (label, cells) ->
      match cells with
      | [ a; b; c; d; e ] ->
          Util.row "%-26s %-14s %-14s %-14s %-14s %-24s" label a b c d e
      | _ -> ())
    rows;
  Util.row "(MorphQPV columns are backed by lib/core: arbitrary predicates over";
  Util.row " density matrices, counter-example output, mid-measurement support.)"

let table5 () =
  Util.header "Table 5: expressiveness vs deductive methods";
  let rows =
    [
      ("Verified object", [ "Expectation"; "Purity"; "Expectation"; "Mixed state & Evolution" ]);
      ("Comparison", [ "Equal/greater"; "Equal"; "Equal/greater"; "Full" ]);
      ("Interpretability", [ "Part"; "No"; "Part"; "Full" ]);
    ]
  in
  Util.row "%-26s %-16s %-12s %-16s %-24s" "" "KNA" "Twist" "QHL" "MorphQPV";
  List.iter
    (fun (label, cells) ->
      match cells with
      | [ a; b; c; d ] -> Util.row "%-26s %-16s %-12s %-16s %-24s" label a b c d
      | _ -> ())
    rows

let run () =
  table2 ();
  table5 ()
