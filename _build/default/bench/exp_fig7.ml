(* Figure 7: number of program executions (sampled inputs) needed to
   identify the unexpected-key bug in the quantum lock, for Quito, NDD and
   MorphQPV, as the lock grows.

   Baselines grid-search basis inputs and stop at the first detection
   (expected cost 2^(k-1)). MorphQPV characterizes once with Clifford
   superposition inputs — which sense every key at once — and finds the
   counter-example by classical optimization; we report the smallest sample
   budget (doubling search) whose validation finds a confirmed
   counter-example. *)

open Morphcore

let zero_dm = Util.basis_dm 1 0

let lock_assertion key =
  Assertion.make ~name:"lock"
    ~assumes:[ Predicate.Diag_in_range (1, key, 0., 0.01) ]
    ~guarantees:[ Predicate.Equals_const (2, zero_dm) ]
    ()

let morph_detects rng program assertion count =
  let ch = Characterize.run ~rng program ~count in
  let approx = Approx.of_characterization ch in
  let options =
    { Verify.default_options with budget = 2000; restarts = 2; projection = `Trace }
  in
  match Verify.validate ~options ~rng ~confirm:program approx assertion with
  | Verify.Violated _ -> true
  | Verify.Verified _ -> false

let run () =
  Util.header "Figure 7: executions to identify the quantum-lock bug";
  Util.row "%-8s %-12s %-12s %-12s %-12s" "k bits" "space" "Quito" "NDD" "MorphQPV";
  List.iter
    (fun k ->
      let seeds = [ 11; 22; 33 ] in
      let key = 1 and unexpected_key = (1 lsl k) - 2 in
      let avg f = Util.mean (Array.of_list (List.map f seeds)) in
      let build () =
        let buggy = Benchmarks.Quantum_lock.make ~key ~unexpected_key k in
        let clean = Benchmarks.Quantum_lock.make ~key k in
        let prog l =
          Program.make ~input_qubits:l.Benchmarks.Quantum_lock.key_qubits
            l.Benchmarks.Quantum_lock.circuit
        in
        (prog clean, prog buggy)
      in
      let quito =
        avg (fun seed ->
            let rng = Stats.Rng.make seed in
            let reference, candidate = build () in
            match Baselines.Quito.executions_to_find ~rng ~reference ~candidate () with
            | Some n -> float_of_int (2 * n) (* reference + candidate run per test *)
            | None -> float_of_int (1 lsl (k + 1)))
      in
      let ndd =
        avg (fun seed ->
            let rng = Stats.Rng.make (seed + 100) in
            let reference, candidate = build () in
            match
              Baselines.Ndd.executions_to_find ~rng ~tracepoint:2 ~reference
                ~candidate ()
            with
            | Some n -> float_of_int (2 * n)
            | None -> float_of_int (1 lsl (k + 1)))
      in
      let morph =
        avg (fun seed ->
            let rng = Stats.Rng.make (seed + 200) in
            let _, candidate = build () in
            let assertion = lock_assertion key in
            match
              Util.min_samples_doubling ~start:4 ~cap:(1 lsl (k + 1))
                (fun count -> morph_detects rng candidate assertion count)
            with
            | Some n -> float_of_int n
            | None -> float_of_int (1 lsl (k + 2)))
      in
      Util.row "%-8d %-12d %-12.1f %-12.1f %-12.1f" k (1 lsl k) quito ndd morph)
    [ 3; 4; 5; 6 ]
