(* Table 6 (Appendix B): success rate and measured wall-clock of MorphQPV
   against the deductive baselines Twist (purity reasoning via simulation)
   and Automa (automata-style sparse equivalence), on larger programs.

   Twist and Automa pay for the full register (their cost is exponential in
   the total qubit count); MorphQPV's cost is governed by the asserted input
   qubits (Strategy-const caps them), which is the scaling claim of the
   paper's Appendix B. *)



let mutants_per_cell = 4

let run () =
  Util.header "Table 6: success rate (%) and measured seconds vs deductive baselines";
  Util.row "(QEC code distance capped at 5 / 9 physical qubits; see exp_table4.ml)";
  Util.row "%-6s %-4s | %-8s %-8s %-8s | %-12s %-12s %-12s" "bench" "n"
    "Twist" "Automa" "Morph" "Twist-s" "Automa-s" "Morph-s";
  List.iter
    (fun name ->
      List.iter
        (fun n ->
          let rng = Stats.Rng.make (Hashtbl.hash (name, n, 6)) in
          let reference0 = Util.benchmark_program rng name n in
          let reference = Util.cap_input_qubits reference0 ~max_inputs:3 in
          let _ = Util.first_last_tracepoints reference in
          let twist_ok = Baselines.Twist.supports reference in
          let automa_ok = Baselines.Automa.supports reference in
          let detect = Util.deviation_detector ~probes:6 rng ~reference ~count:16 in
          let twist_hits = ref 0 and automa_hits = ref 0 and morph_hits = ref 0 in
          let twist_time = ref 0. and automa_time = ref 0. and morph_time = ref 0. in
          let actual = ref 0 in
          for _ = 1 to mutants_per_cell do
            match Util.nonequivalent_mutant ~qubits:(Util.watched_qubits reference) rng reference with
            | None -> ()
            | Some candidate ->
            incr actual;
            let n_in = Morphcore.Program.num_input_qubits reference in
            let test_states =
              List.init 2 (fun index ->
                  Clifford.Sampling.state rng Clifford.Sampling.Clifford n_in ~index)
            in
            if twist_ok then begin
              let r =
                Baselines.Twist.check ~rng ~inputs:test_states ~tests:2 ~reference
                  ~candidate ()
              in
              twist_time := !twist_time +. r.Baselines.Verifier.seconds;
              if r.Baselines.Verifier.bug_found then incr twist_hits
            end;
            if automa_ok then begin
              let preps =
                List.init 2 (fun index ->
                    Clifford.Sampling.prep_circuit rng Clifford.Sampling.Clifford
                      n_in ~index)
              in
              let r =
                Baselines.Automa.check ~rng ~input_preps:preps ~tests:2 ~reference
                  ~candidate ()
              in
              automa_time := !automa_time +. r.Baselines.Verifier.seconds;
              if r.Baselines.Verifier.bug_found then incr automa_hits
            end;
            let (), t =
              Util.time (fun () -> if detect candidate > 1e-4 then incr morph_hits)
            in
            morph_time := !morph_time +. t
          done;
          let denom = max 1 !actual in
          let pct hits = 100. *. float_of_int hits /. float_of_int denom in
          let per_run t = t /. float_of_int denom in
          let col ok hits = if ok then Printf.sprintf "%.0f" (pct hits) else "/" in
          let tcol ok t = if ok then Printf.sprintf "%.3f" (per_run t) else "/" in
          Util.row "%-6s %-4d | %-8s %-8s %-8.0f | %-12s %-12s %-12.3f" name n
            (col twist_ok !twist_hits)
            (col automa_ok !automa_hits)
            (pct !morph_hits)
            (tcol twist_ok !twist_time)
            (tcol automa_ok !automa_time)
            (per_run !morph_time))
        [ 5; 7; 9 ])
    [ "QEC"; "Shor"; "QNN"; "XEB" ]
