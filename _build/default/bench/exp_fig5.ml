(* Figure 5: experimental vs theoretical approximation accuracy in quantum
   teleportation, as a function of the number of sampled inputs.

   The paper uses 7- and 15-qubit teleportation with N_in = 3 and 5; our
   multi-payload protocol uses 3k qubits for a k-qubit payload, so we run
   the same N_in at 9 and 15 total qubits. Case 1 inputs are random
   mixtures of the sampled inputs (exactly representable); case 2 inputs are
   Haar-random pure states. *)

open Morphcore

let series rng ~payload =
  let circuit = Benchmarks.Teleport.multi payload in
  let program =
    Program.make ~input_qubits:(Benchmarks.Teleport.input_qubits payload) circuit
  in
  (* sweep past the paper's 2^(N+1) mark up to the operator-space dimension
     4^N, where reconstruction saturates exactly *)
  let full = min 128 (1 lsl (2 * payload)) in
  let budgets =
    let rec go acc c = if c > full then List.rev acc else go (c :: acc) (c * 2) in
    go [] 2
  in
  Util.row "%-10s %-14s %-14s %-14s" "N_sample" "case1-acc" "case2-acc" "theory(case2)";
  List.iter
    (fun count ->
      let ch =
        Characterize.run ~rng ~kind:Clifford.Sampling.Haar ~trajectories:12
          program ~count
      in
      let approx = Approx.of_characterization ch in
      (* case 1: mixtures of the sampled inputs *)
      let sampled =
        Array.to_list
          (Array.map (fun s -> s.Characterize.input_state) ch.Characterize.samples)
      in
      let case1 =
        Util.mean
          (Array.init 6 (fun _ ->
               let rho_in = Clifford.Sampling.random_mixture rng sampled in
               let predicted = Approx.state_at approx ~tracepoint:2 rho_in in
               (* ground truth: teleportation is the identity map on the
                  payload, so the true output state equals the input *)
               Approx.accuracy predicted rho_in))
      in
      (* case 2: Haar-random pure payloads *)
      let case2 = Util.probe_accuracy ~count:8 rng approx program ~tracepoint:2 in
      let theory = Approx.theoretical_accuracy ~n_in:payload ~n_sample:count in
      Util.row "%-10d %-14.4f %-14.4f %-14.4f" count case1 case2 theory)
    budgets

let run () =
  let rng = Stats.Rng.make 501 in
  Util.header "Figure 5(a): teleportation, N_in = 3 (9 qubits total)";
  series rng ~payload:3;
  Util.header "Figure 5(b): teleportation, N_in = 5 (15 qubits total)";
  series rng ~payload:5
