(* Figure 6: the distribution of approximation accuracies across random
   inputs follows a Beta distribution. We histogram probe accuracies of a
   partially-characterized program and overlay the fitted Beta pdf. *)

open Morphcore

let run () =
  Util.header "Figure 6: distribution of approximation accuracies vs fitted Beta";
  let rng = Stats.Rng.make 601 in
  let payload = 3 in
  let program =
    Program.make
      ~input_qubits:(Benchmarks.Teleport.input_qubits payload)
      (Benchmarks.Teleport.multi payload)
  in
  let count = 6 (* deliberately partial: 2^(3+1) = 16 would be exact *) in
  let ch =
    Characterize.run ~rng ~kind:Clifford.Sampling.Clifford ~trajectories:12
      program ~count
  in
  let approx = Approx.of_characterization ch in
  let accs = Verify.probe_accuracies ~rng ~count:120 approx program ~tracepoint:2 in
  let dist = Stats.Beta_dist.fit accs in
  Util.row "N_sample = %d, %d probe inputs" count (Array.length accs);
  Util.row "empirical mean %.4f, fitted %s (mean %.4f)" (Util.mean accs)
    (Format.asprintf "%a" Stats.Beta_dist.pp dist)
    (Stats.Beta_dist.mean dist);
  let bins = 10 in
  let hist = Stats.Describe.histogram ~bins ~lo:0. ~hi:1. accs in
  Util.row "%-12s %-10s %-12s %-10s" "acc bin" "count" "empir.dens" "beta pdf";
  Array.iteri
    (fun i c ->
      let lo = float_of_int i /. float_of_int bins in
      let mid = lo +. (0.5 /. float_of_int bins) in
      let dens =
        float_of_int c /. float_of_int (Array.length accs) *. float_of_int bins
      in
      Util.row "[%.1f,%.1f)   %-10d %-12.3f %-10.3f" lo
        (lo +. (1. /. float_of_int bins))
        c dens (Stats.Beta_dist.pdf dist mid))
    hist
