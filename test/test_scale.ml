(* Scalable-simulation subsystem tests (DESIGN.md §13): the sparse
   coordinate engine, the sum-over-stabilizers (stabilizer-rank) engine,
   the static support bound, [`Auto] routing past the dense wall, the
   MQ018 lint diagnostic, and 28+-qubit end-to-end characterization
   where the dense engine provably never runs. *)

open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

let check_traces name a b =
  Alcotest.(check bool) name true (Oracle.traces_match a b)

let ghz ?(ts = []) n =
  let c = ref (Circuit.(empty n |> h 0)) in
  for q = 0 to n - 2 do
    c := Circuit.cx q (q + 1) !c
  done;
  List.iter (fun q -> c := Circuit.t_gate q !c) ts;
  !c

(* ------------------------- static support bound ----------------------- *)

let test_support_bound () =
  (* diagonal/permutation-only circuit: the basis support never grows *)
  let c = Circuit.(empty 3 |> x 0 |> mcz [ 0; 1; 2 ] |> t_gate 2) in
  Alcotest.(check int) "diagonal" 1 (Analysis.Classify.support_bound c);
  (* h branches its target; cx spreads through its target *)
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  Alcotest.(check int) "h + cx" 4 (Analysis.Classify.support_bound c);
  let c = Circuit.(empty 5 |> h 0 |> h 1 |> h 2) in
  Alcotest.(check int) "three h" 8 (Analysis.Classify.support_bound c);
  Alcotest.(check int) "capped" 4
    (Analysis.Classify.support_bound ~cap:4 c);
  (* the bound never exceeds the full register dimension *)
  let c = Circuit.(empty 2 |> h 0 |> h 1 |> h 0 |> h 1) in
  Alcotest.(check int) "saturates at 2^n" 4 (Analysis.Classify.support_bound c)

(* ------------------------ tableau Pauli expectation ------------------- *)

let test_expectation_pauli () =
  let t0 = Stabilizer.Tableau.make 1 in
  Alcotest.(check int) "<0|Z|0>" 1
    (Stabilizer.Tableau.expectation_pauli t0 ~x:0 ~z:1);
  Alcotest.(check int) "<0|X|0>" 0
    (Stabilizer.Tableau.expectation_pauli t0 ~x:1 ~z:0);
  let bell = Stabilizer.Tableau.run Circuit.(empty 2 |> h 0 |> cx 0 1) in
  Alcotest.(check int) "<XX>" 1
    (Stabilizer.Tableau.expectation_pauli bell ~x:3 ~z:0);
  Alcotest.(check int) "<ZZ>" 1
    (Stabilizer.Tableau.expectation_pauli bell ~x:0 ~z:3);
  Alcotest.(check int) "<YY>" (-1)
    (Stabilizer.Tableau.expectation_pauli bell ~x:3 ~z:3);
  Alcotest.(check int) "<Z.>" 0
    (Stabilizer.Tableau.expectation_pauli bell ~x:0 ~z:1)

(* compare against the dense expectation on random Clifford circuits:
   apply the Hermitian Pauli word gate by gate ((1,1) = Y) and take the
   inner product *)
let dense_expectation st ~x ~z =
  let n = Qstate.Statevec.num_qubits st in
  let st' = Qstate.Statevec.copy st in
  for q = 0 to n - 1 do
    let gx = (x lsr q) land 1 = 1 and gz = (z lsr q) land 1 = 1 in
    let name =
      if gx && gz then Some "y" else if gx then Some "x"
      else if gz then Some "z" else None
    in
    match name with
    | Some name ->
        Sim.Engine.apply_gate (Circuit.Gate.make name [ q ]) st'
    | None -> ()
  done;
  Linalg.Cx.re
    (Linalg.Cvec.dot (Qstate.Statevec.to_cvec st) (Qstate.Statevec.to_cvec st'))

let prop_expectation_pauli =
  QCheck.Test.make ~name:"expectation_pauli ~ dense (clifford)" ~count
    (Gen.clifford ~max_qubits:3 ())
    (fun circ ->
      let c = Gen.build circ in
      let n = Circuit.num_qubits c in
      let tab = Stabilizer.Tableau.run c in
      let st = (Sim.Engine.run c).Sim.Engine.state in
      let ok = ref true in
      for x = 0 to (1 lsl n) - 1 do
        for z = 0 to (1 lsl n) - 1 do
          let e = Stabilizer.Tableau.expectation_pauli tab ~x ~z in
          if Float.abs (float_of_int e -. dense_expectation st ~x ~z) > 1e-9
          then ok := false
        done
      done;
      !ok)

(* --------------------------- sparse engine ---------------------------- *)

let test_sparse_bv () =
  let c = Benchmarks.Bv.circuit ~secret:0b10110 6 in
  let r = Sim.Sparse.run ~densify_limit:256 c in
  let dense = Sim.Engine.run c in
  let final =
    match r.Sim.Sparse.final with
    | Sim.Sparse.Sparse_state st -> Sim.Sparse.to_statevec st
    | Sim.Sparse.Dense_state st -> st
  in
  Alcotest.(check bool) "final state" true
    (Qstate.Statevec.fidelity_pure final dense.Sim.Engine.state >= 1. -. 1e-9);
  (* the H layer grows the live support well past the single basis state *)
  Alcotest.(check bool) "peak support grew" true (r.Sim.Sparse.peak_support >= 64);
  check_traces "traces" r.Sim.Sparse.traces dense.Sim.Engine.traces

let test_sparse_densify () =
  (* uniform superposition outgrows the limit and falls back densely *)
  let c = ref (Circuit.empty 8) in
  for q = 0 to 7 do
    c := Circuit.h q !c
  done;
  let c = Circuit.(!c |> t_gate 0 |> tracepoint 1 [ 0 ]) in
  let r = Sim.Sparse.run ~densify_limit:4 c in
  (match r.Sim.Sparse.final with
  | Sim.Sparse.Dense_state st ->
      Alcotest.(check bool) "dense final" true
        (Qstate.Statevec.fidelity_pure st (Sim.Engine.run c).Sim.Engine.state
        >= 1. -. 1e-9)
  | Sim.Sparse.Sparse_state _ -> Alcotest.fail "expected densify");
  check_traces "traces" r.Sim.Sparse.traces (Sim.Engine.run c).Sim.Engine.traces

let sparse_dispatchable c =
  List.for_all
    (function
      | Circuit.Instr.Gate g | Circuit.Instr.If_gate { gate = g; _ } -> (
          match (g.Circuit.Gate.name, g.Circuit.Gate.targets) with
          | "swap", [ _; _ ] -> g.Circuit.Gate.controls = []
          | _, [ _ ] -> true
          | _ -> false)
      | _ -> true)
    (Circuit.instrs c)

(* full programs (measure / reset / feedback): same generator stream as
   the dense engine, so clbits are bit-identical and states agree *)
let prop_sparse_program =
  QCheck.Test.make ~name:"Sparse.run ~ Engine.run (programs)" ~count
    (Gen.program ())
    (fun circ ->
      let c = Gen.build circ in
      (not (sparse_dispatchable c))
      ||
      let a = Sim.Sparse.run ~rng:(Stats.Rng.make 42) c in
      let b = Sim.Engine.run ~rng:(Stats.Rng.make 42) c in
      let final =
        match a.Sim.Sparse.final with
        | Sim.Sparse.Sparse_state st -> Sim.Sparse.to_statevec st
        | Sim.Sparse.Dense_state st -> st
      in
      a.Sim.Sparse.clbits = b.Sim.Engine.clbits
      && Oracle.traces_match a.Sim.Sparse.traces b.Sim.Engine.traces
      && Qstate.Statevec.fidelity_pure final b.Sim.Engine.state >= 1. -. 1e-9)

let prop_sparse_traces =
  QCheck.Test.make ~name:"sparse_traces ~ statevec (pure)" ~count
    (Gen.pure ()) Oracle.sparse_vs_statevec

(* ------------------------- stabilizer-rank engine --------------------- *)

let test_rank_small () =
  let c =
    Circuit.(
      empty 3 |> h 0 |> cx 0 1 |> t_gate 1 |> cx 1 2 |> tracepoint 1 [ 1; 2 ])
  in
  Alcotest.(check bool) "applicable" true (Sim.Engine.rank_applicable c);
  check_traces "traces" (Sim.Engine.rank_traces c)
    (Sim.Engine.run c).Sim.Engine.traces

let test_rank_branches () =
  let st = Sim.Rank.make 1 0 in
  Sim.Rank.apply_gate (Circuit.Gate.make "h" [ 0 ]) st;
  Alcotest.(check int) "clifford keeps one frame" 1 (Sim.Rank.branch_count st);
  Sim.Rank.apply_gate (Circuit.Gate.make "t" [ 0 ]) st;
  Alcotest.(check int) "t splits" 2 (Sim.Rank.branch_count st);
  (* tdg undoes it: the Z-frame coefficient cancels exactly and is pruned *)
  Sim.Rank.apply_gate (Circuit.Gate.make "tdg" [ 0 ]) st;
  Alcotest.(check int) "tdg merges back" 1 (Sim.Rank.branch_count st)

let prop_rank_traces =
  QCheck.Test.make ~name:"rank_traces ~ statevec (near-clifford)" ~count
    (Gen.near_clifford ()) Oracle.rank_vs_statevec

(* ------------------------------ routing ------------------------------- *)

let test_auto_route () =
  let clifford = Circuit.(empty 2 |> h 0 |> cx 0 1 |> tracepoint 1 [ 0 ]) in
  Alcotest.(check bool) "clifford -> stabilizer" true
    (Sim.Engine.auto_route clifford = Some `Stabilizer);
  let small = Circuit.(empty 2 |> h 0 |> t_gate 0 |> tracepoint 1 [ 0 ]) in
  Alcotest.(check bool) "below the wall -> dense" true
    (Sim.Engine.auto_route small = None);
  (* forcing the wall to zero exposes the static preferences *)
  let diagonal =
    Circuit.(
      empty 6 |> x 0 |> t_gate 0
      |> mcz [ 0; 1; 2; 3; 4; 5 ]
      |> tracepoint 1 [ 0 ])
  in
  Alcotest.(check bool) "low support -> sparse" true
    (Sim.Engine.auto_route ~wall:0. diagonal = Some `Sparse);
  Alcotest.(check bool) "near-clifford -> rank" true
    (Sim.Engine.auto_route ~wall:0.
       Circuit.(ghz ~ts:[ 17 ] 18 |> tracepoint 1 [ 17 ])
    = Some `Rank)

let test_forced_engines_reject () =
  (match
     Sim.Engine.tracepoint_states ~engine:`Rank
       Circuit.(empty 1 |> u3 0.3 0.2 0.1 0 |> tracepoint 1 [ 0 ])
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* measurement makes a single pass inexact: the sparse route refuses *)
  match
    Sim.Engine.tracepoint_states ~engine:`Sparse
      Circuit.(empty ~clbits:1 2 |> h 0 |> measure 0 0 |> tracepoint 1 [ 0 ])
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------ end-to-end past the dense wall -------------------- *)

(* run [f] with observability on and fresh metrics, restoring the
   caller's setting; returns [f ()] paired with a counter reader *)
let with_metrics f =
  let was = Obs.enabled () in
  Obs.configure ~enabled:true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () -> Obs.configure ~enabled:was) f

let routed_count engine =
  Option.value ~default:0
    (Obs.Metrics.counter_value
       ~labels:[ ("engine", engine) ]
       "sim_engine_routed_total")

let basis_index st =
  let d = Qstate.Statevec.dim st in
  let best = ref 0 in
  for k = 0 to d - 1 do
    if
      Linalg.Cx.norm2 (Qstate.Statevec.amplitude st k)
      > Linalg.Cx.norm2 (Qstate.Statevec.amplitude st !best)
    then best := k
  done;
  !best

(* 28-qubit Bernstein-Vazirani through [Characterize.run ~engine:`Auto]:
   BV is all-Clifford, so the router sends every sample to the
   (lightcone-restricted) stabilizer tableau — the dense engine cannot
   even allocate 2^28 amplitudes — and the traced qubits must read
   [input xor secret] exactly *)
let test_bv28_characterize () =
  let secret = 0b1 lor (0b1011 lsl 10) in
  let c = Benchmarks.Bv.circuit ~trace_qubits:[ 0; 1 ] ~secret 28 in
  Alcotest.(check bool) "routes stabilizer" true
    (Sim.Engine.auto_route c = Some `Stabilizer);
  with_metrics @@ fun () ->
  let rng = Stats.Rng.make 11 in
  let program = Morphcore.Program.make ~input_qubits:[ 0; 1 ] c in
  let ch =
    Morphcore.Characterize.run ~rng ~kind:Clifford.Sampling.Basis
      ~engine:`Auto program ~count:3
  in
  Alcotest.(check int) "stabilizer routed per sample" 3
    (routed_count "stabilizer");
  Alcotest.(check int) "dense never invoked" 0 (routed_count "statevec");
  Array.iter
    (fun (s : Morphcore.Characterize.sample) ->
      let b = basis_index s.Morphcore.Characterize.input_state in
      let expected = b lxor (secret land 3) in
      let m = List.assoc 1 s.Morphcore.Characterize.traces in
      let diag = Linalg.Cmat.get m expected expected in
      Alcotest.(check bool) "trace reads input xor secret" true
        (Float.abs (Linalg.Cx.re diag -. 1.) <= 1e-9))
    ch.Morphcore.Characterize.samples;
  (* and the verification layer consumes the routed traces unchanged *)
  let approx = Morphcore.Approx.of_characterization ch in
  let assertion =
    Morphcore.Assertion.make ~name:"bv28" ~assumes:[]
      ~guarantees:[ Morphcore.Predicate.Purity_ge (1, 0.0) ] ()
  in
  let options =
    { Morphcore.Verify.default_options with budget = 200; restarts = 1 }
  in
  (match Morphcore.Verify.validate ~options ~rng approx assertion with
  | Morphcore.Verify.Verified _ -> ()
  | Morphcore.Verify.Violated _ -> Alcotest.fail "bv28 assertion violated")

(* 32-qubit quantum lock: the mcz acceptance block is non-Clifford, so
   the stabilizer route refuses — but it is diagonal, so the static
   support bound is 2 and the sparse route carries every sample. The
   probe must read 1 exactly on the secret key. *)
let test_lock32_characterize () =
  let key = 0b10 in
  let t = Benchmarks.Quantum_lock.make ~key_tracepoint:false ~key 31 in
  let c = t.Benchmarks.Quantum_lock.circuit in
  Alcotest.(check int) "32 qubits" 32 (Circuit.num_qubits c);
  Alcotest.(check bool) "routes sparse" true
    (Sim.Engine.auto_route c = Some `Sparse);
  with_metrics @@ fun () ->
  let rng = Stats.Rng.make 13 in
  (* sample basis inputs on the two low key qubits; the key fits there *)
  let program = Morphcore.Program.make ~input_qubits:[ 1; 2 ] c in
  let ch =
    Morphcore.Characterize.run ~rng ~kind:Clifford.Sampling.Basis
      ~engine:`Auto program ~count:3
  in
  Alcotest.(check int) "sparse routed per sample" 3 (routed_count "sparse");
  Alcotest.(check int) "dense never invoked" 0 (routed_count "statevec");
  Array.iter
    (fun (s : Morphcore.Characterize.sample) ->
      let b = basis_index s.Morphcore.Characterize.input_state in
      let expected = if b = key then 1 else 0 in
      let m = List.assoc 2 s.Morphcore.Characterize.traces in
      let diag = Linalg.Cmat.get m expected expected in
      Alcotest.(check bool) "probe reads key match" true
        (Float.abs (Linalg.Cx.re diag -. 1.) <= 1e-9))
    ch.Morphcore.Characterize.samples;
  let approx = Morphcore.Approx.of_characterization ch in
  let assertion =
    Morphcore.Assertion.make ~name:"lock32" ~assumes:[]
      ~guarantees:[ Morphcore.Predicate.Purity_ge (2, 0.0) ] ()
  in
  let options =
    { Morphcore.Verify.default_options with budget = 200; restarts = 1 }
  in
  match Morphcore.Verify.validate ~options ~rng approx assertion with
  | Morphcore.Verify.Verified _ -> ()
  | Morphcore.Verify.Violated _ -> Alcotest.fail "lock32 assertion violated"

(* 24-qubit GHZ with six T gates: the support bound blows up (every cx
   spreads), so the router must fall through to the stabilizer-rank
   engine; the traced pair of a (phased) GHZ state is the exact
   half-half classical mixture *)
let test_rank24_characterize () =
  let c =
    Circuit.(ghz ~ts:[ 3; 7; 11; 15; 19; 23 ] 24 |> tracepoint 1 [ 22; 23 ])
  in
  Alcotest.(check bool) "routes rank" true
    (Sim.Engine.auto_route c = Some `Rank);
  with_metrics @@ fun () ->
  let rng = Stats.Rng.make 12 in
  let program = Morphcore.Program.make ~input_qubits:[ 0 ] c in
  let ch =
    Morphcore.Characterize.run ~rng ~kind:Clifford.Sampling.Basis
      ~engine:`Auto program ~count:2
  in
  Alcotest.(check int) "rank routed per sample" 2 (routed_count "rank");
  Alcotest.(check int) "dense never invoked" 0 (routed_count "statevec");
  Array.iter
    (fun (s : Morphcore.Characterize.sample) ->
      let m = List.assoc 1 s.Morphcore.Characterize.traces in
      let expected = Linalg.Cmat.create 4 4 in
      Linalg.Cmat.set expected 0 0 (Linalg.Cx.make 0.5 0.);
      Linalg.Cmat.set expected 3 3 (Linalg.Cx.make 0.5 0.);
      Alcotest.(check bool) "half-half GHZ mixture" true
        (Linalg.Cmat.frob_norm (Linalg.Cmat.sub m expected) <= 1e-9))
    ch.Morphcore.Characterize.samples;
  let approx = Morphcore.Approx.of_characterization ch in
  let assertion =
    Morphcore.Assertion.make ~name:"ghz24" ~assumes:[]
      ~guarantees:[ Morphcore.Predicate.Purity_ge (1, 0.4) ] ()
  in
  let options =
    { Morphcore.Verify.default_options with budget = 200; restarts = 1 }
  in
  match Morphcore.Verify.validate ~options ~rng approx assertion with
  | Morphcore.Verify.Verified _ -> ()
  | Morphcore.Verify.Violated _ -> Alcotest.fail "ghz24 assertion violated"

let prop_scale_route =
  QCheck.Test.make
    ~name:"characterize scale route ~ sequential (near-clifford)"
    ~count:(max 10 (count / 4))
    (Gen.near_clifford ())
    (fun c -> Oracle.characterize_scale_route c)

(* ------------------------------- MQ018 -------------------------------- *)

(* same wiring as the CLI: the router lives above the analysis layer *)
let classify c =
  match Sim.Engine.sim_class c with
  | Sim.Engine.Class_dense -> "dense"
  | Sim.Engine.Class_sparse -> "sparse"
  | Sim.Engine.Class_stabilizer -> "stabilizer"
  | Sim.Engine.Class_rank k -> Printf.sprintf "stabilizer-rank 2^%d" k

(* a program no scalable engine accepts: a controlled non-Clifford
   rotation (not rank-decomposable) under a register-wide tracepoint *)
let dense_only n =
  let c = ref (Circuit.empty n) in
  for q = 0 to n - 1 do
    c := Circuit.h q !c
  done;
  Circuit.(
    !c |> cp 0.3 0 1 |> tracepoint 1 (List.init n (fun q -> q)))

let test_mq018 () =
  let info_of c =
    match Analysis.Lint.check_sim_class ~classify c with
    | [ d ] when d.Analysis.Lint.severity = Analysis.Lint.Info ->
        d.Analysis.Lint.message
    | ds -> Alcotest.failf "expected one Info, got %d" (List.length ds)
  in
  Alcotest.(check string) "stabilizer class"
    "estimated simulation class: stabilizer"
    (info_of Circuit.(ghz 4 |> tracepoint 1 [ 3 ]));
  Alcotest.(check string) "sparse class"
    "estimated simulation class: sparse"
    (info_of Circuit.(empty 3 |> x 0 |> t_gate 0 |> tracepoint 1 [ 0 ]));
  (* a wide GHZ chain defeats the support bound (every cx spreads), so
     the near-Clifford fallback reports its non-Clifford count *)
  Alcotest.(check string) "rank class"
    "estimated simulation class: stabilizer-rank 2^1"
    (info_of Circuit.(ghz ~ts:[ 17 ] 18 |> tracepoint 1 [ 17 ]));
  (* measurement makes every scalable route refuse: Info only, no
     warning on a narrow register *)
  Alcotest.(check string) "dense class (small)"
    "estimated simulation class: dense"
    (info_of
       Circuit.(
         empty ~clbits:1 2 |> h 0 |> measure 0 0 |> tracepoint 1 [ 0 ]))

let test_mq018_dense_warning () =
  match Analysis.Lint.check_sim_class ~classify (dense_only 24) with
  | [ info; warn ] ->
      Alcotest.(check bool) "info first" true
        (info.Analysis.Lint.severity = Analysis.Lint.Info);
      Alcotest.(check bool) "warning severity" true
        (warn.Analysis.Lint.severity = Analysis.Lint.Warning);
      Alcotest.(check string) "golden rendering"
        "prog.qasm: warning[MQ018]: program is dense-only at 24 qubits \
         (threshold 20): every simulation pass touches 2^24 amplitudes and \
         no sparse or stabilizer route applies (tune with \
         MORPHQPV_LINT_DENSE_QUBITS)"
        (Format.asprintf "%a" (Analysis.Lint.pp ~file:"prog.qasm") warn);
      (* raising the threshold silences the warning *)
      Alcotest.(check int) "threshold override" 1
        (List.length
           (Analysis.Lint.check_sim_class ~classify ~threshold:30
              (dense_only 24)))
  | ds -> Alcotest.failf "expected Info + Warning, got %d" (List.length ds)

let () =
  Alcotest.run "scale"
    [
      ( "static",
        [
          Alcotest.test_case "support bound" `Quick test_support_bound;
          Alcotest.test_case "expectation_pauli" `Quick test_expectation_pauli;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "bv end state" `Quick test_sparse_bv;
          Alcotest.test_case "densify hatch" `Quick test_sparse_densify;
        ] );
      ( "rank",
        [
          Alcotest.test_case "near-clifford traces" `Quick test_rank_small;
          Alcotest.test_case "branch growth and merge" `Quick
            test_rank_branches;
        ] );
      ( "routing",
        [
          Alcotest.test_case "auto_route decisions" `Quick test_auto_route;
          Alcotest.test_case "forced engines reject" `Quick
            test_forced_engines_reject;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "bv 28q stabilizer characterize" `Quick
            test_bv28_characterize;
          Alcotest.test_case "lock 32q sparse characterize" `Quick
            test_lock32_characterize;
          Alcotest.test_case "ghz+t 24q rank characterize" `Quick
            test_rank24_characterize;
        ] );
      ( "lint",
        [
          Alcotest.test_case "MQ018 classes" `Quick test_mq018;
          Alcotest.test_case "MQ018 dense warning" `Quick
            test_mq018_dense_warning;
        ] );
      ( "properties",
        List.map qtest
          [
            prop_expectation_pauli;
            prop_sparse_program;
            prop_sparse_traces;
            prop_rank_traces;
            prop_scale_route;
          ] );
    ]
