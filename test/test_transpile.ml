open Transpile

let rng () = Stats.Rng.make 7171

let check_equiv msg before after =
  if not (Equiv.unitaries_equal before after) then
    Alcotest.failf "%s: optimization changed semantics:@.%s@.->@.%s" msg
      (Format.asprintf "%a" Circuit.pp before)
      (Format.asprintf "%a" Circuit.pp after)

(* ---------------- cancel_inverses ---------------- *)

let test_cancel_hh () =
  let c = Circuit.(empty 1 |> h 0 |> h 0) in
  let c' = Passes.cancel_inverses c in
  Alcotest.(check int) "empty" 0 (Circuit.gate_count c');
  check_equiv "hh" c c'

let test_cancel_s_sdg () =
  let c = Circuit.(empty 1 |> s 0 |> sdg 0 |> t_gate 0 |> tdg 0) in
  Alcotest.(check int) "all gone" 0 (Circuit.gate_count (Passes.cancel_inverses c))

let test_cancel_cx_pair () =
  let c = Circuit.(empty 2 |> cx 0 1 |> cx 0 1) in
  Alcotest.(check int) "cx pair" 0 (Circuit.gate_count (Passes.cancel_inverses c))

let test_cancel_across_disjoint () =
  (* the intervening gate touches a different qubit: still cancels *)
  let c = Circuit.(empty 3 |> h 0 |> x 2 |> h 0) in
  let c' = Passes.cancel_inverses c in
  Alcotest.(check int) "only x remains" 1 (Circuit.gate_count c');
  check_equiv "across disjoint" c c'

let test_no_cancel_across_overlap () =
  (* z on the same qubit blocks the h..h cancellation *)
  let c = Circuit.(empty 1 |> h 0 |> z 0 |> h 0) in
  let c' = Passes.cancel_inverses c in
  Alcotest.(check int) "kept" 3 (Circuit.gate_count c');
  check_equiv "blocked" c c'

let test_no_cancel_across_tracepoint () =
  (* the tracepoint observes the qubit between the pair: must not cancel,
     otherwise the recorded state changes *)
  let c = Circuit.(empty 1 |> h 0 |> tracepoint 1 [ 0 ] |> h 0) in
  let c' = Passes.cancel_inverses c in
  Alcotest.(check int) "kept" 2 (Circuit.gate_count c')

let test_cancel_different_wires_kept () =
  let c = Circuit.(empty 2 |> cx 0 1 |> cx 1 0) in
  Alcotest.(check int) "kept" 2 (Circuit.gate_count (Passes.cancel_inverses c))

let test_cancel_rotation_negation () =
  let c = Circuit.(empty 1 |> rz 0.7 0 |> rz (-0.7) 0) in
  Alcotest.(check int) "negated" 0 (Circuit.gate_count (Passes.cancel_inverses c))

(* ---------------- merge_rotations ---------------- *)

let test_merge_rz () =
  let c = Circuit.(empty 1 |> rz 0.3 0 |> rz 0.4 0) in
  let c' = Passes.merge_rotations c in
  Alcotest.(check int) "merged" 1 (Circuit.gate_count c');
  check_equiv "rz merge" c c'

let test_merge_exact_identity () =
  (* rz(x) rz(4pi - x) is the exact identity matrix *)
  let c = Circuit.(empty 1 |> rz 1.0 0 |> rz ((4. *. Float.pi) -. 1.0) 0) in
  let c' = Passes.merge_rotations c in
  Alcotest.(check int) "vanished" 0 (Circuit.gate_count c');
  check_equiv "identity merge" c c'

let test_merge_2pi_not_dropped () =
  (* rz(2pi) = -I: a global phase — but dropping it under a CONTROL would be
     wrong, so the pass must keep a merged crz(2pi) *)
  let c = Circuit.(empty 2 |> crz 1.0 0 1 |> crz ((2. *. Float.pi) -. 1.0) 0 1) in
  let c' = Passes.merge_rotations c in
  Alcotest.(check int) "kept" 1 (Circuit.gate_count c');
  check_equiv "controlled 2pi" c c'

let test_merge_mixed_axes_kept () =
  let c = Circuit.(empty 1 |> rz 0.3 0 |> rx 0.4 0) in
  Alcotest.(check int) "no merge" 2 (Circuit.gate_count (Passes.merge_rotations c))

(* ---------------- drop_identities ---------------- *)

let test_drop_identities () =
  let c = Circuit.(empty 1 |> rz 0. 0 |> rx (4. *. Float.pi) 0 |> p 0. 0 |> h 0) in
  let c' = Passes.drop_identities c in
  Alcotest.(check int) "only h" 1 (Circuit.gate_count c')

(* ---------------- optimize (fixpoint) ---------------- *)

let test_optimize_cascade () =
  (* h x x h: inner xx cancels, then hh cancels — needs the fixpoint *)
  let c = Circuit.(empty 1 |> h 0 |> x 0 |> x 0 |> h 0) in
  Alcotest.(check int) "cascade" 0 (Circuit.gate_count (Passes.optimize c))

let test_optimize_preserves_random_circuits () =
  (* deterministic sweep over the shared testkit generator *)
  let rand = Random.State.make [| 7171 |] in
  List.iter
    (fun circ ->
      let before = Testkit.Gen.build circ in
      let after = Passes.optimize before in
      check_equiv "random circuit" before after;
      assert (Circuit.gate_count after <= Circuit.gate_count before))
    (QCheck.Gen.generate ~rand ~n:10 (Testkit.Gen.gen_pure ~max_qubits:3 ()))

let test_optimize_reduces_redundant () =
  let r = rng () in
  (* build a circuit, then append its adjoint: everything should collapse *)
  let base = Circuit.(empty 2 |> h 0 |> rz 0.9 1 |> cx 0 1 |> t_gate 0) in
  let c = Circuit.append base (Circuit.adjoint base) in
  let c' = Passes.optimize c in
  Alcotest.(check int) "annihilated" 0 (Circuit.gate_count c');
  ignore r

let test_gate_reduction_metric () =
  let before = Circuit.(empty 1 |> h 0 |> h 0 |> x 0) in
  let after = Passes.optimize before in
  let red = Passes.gate_reduction ~before ~after in
  if Float.abs (red -. (2. /. 3.)) > 1e-9 then
    Alcotest.failf "reduction %.3f" red

let test_gate_reduction_empty () =
  (* a gate-free circuit must yield a defined 0.0, not a 0/0 NaN *)
  let before = Circuit.(empty 1 |> tracepoint 1 [ 0 ]) in
  let red = Passes.gate_reduction ~before ~after:(Passes.optimize before) in
  Alcotest.(check (float 0.)) "empty before" 0. red;
  Alcotest.(check bool) "finite" true (Float.is_finite red)

(* ---------------- Equiv ---------------- *)

let test_equiv_global_phase () =
  (* Z X and X Z differ by a global phase -1 *)
  let a = Circuit.(empty 1 |> z 0 |> x 0) in
  let b = Circuit.(empty 1 |> x 0 |> z 0) in
  assert (Equiv.unitaries_equal a b);
  assert (not (Equiv.unitaries_equal ~up_to_phase:false a b))

let test_equiv_detects_difference () =
  let a = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  let b = Circuit.(empty 2 |> h 0 |> cx 0 1 |> s 1) in
  assert (not (Equiv.unitaries_equal a b));
  assert (not (Equiv.states_agree (rng ()) a b))

let test_equiv_sampling_agrees () =
  let c = Benchmarks.Ghz.circuit 4 in
  let c' = Passes.optimize c in
  assert (Equiv.states_agree (rng ()) c c');
  assert (Equiv.equivalent c c')

let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves unitary" ~count:25
    (Testkit.Gen.pure ~max_qubits:3 ())
    (fun circ ->
      let c = Testkit.Gen.build circ in
      Equiv.unitaries_equal c (Passes.optimize c))

let prop_mutants_rejected =
  QCheck.Test.make ~name:"certificate mutants rejected" ~count:25
    (Testkit.Gen.program ~max_qubits:3 ())
    Testkit.Oracle.certified_mutants_rejected

let () =
  Alcotest.run "transpile"
    [
      ( "cancel",
        [
          Alcotest.test_case "hh" `Quick test_cancel_hh;
          Alcotest.test_case "s sdg / t tdg" `Quick test_cancel_s_sdg;
          Alcotest.test_case "cx pair" `Quick test_cancel_cx_pair;
          Alcotest.test_case "across disjoint" `Quick test_cancel_across_disjoint;
          Alcotest.test_case "blocked by overlap" `Quick test_no_cancel_across_overlap;
          Alcotest.test_case "blocked by tracepoint" `Quick test_no_cancel_across_tracepoint;
          Alcotest.test_case "different wires kept" `Quick test_cancel_different_wires_kept;
          Alcotest.test_case "rotation negation" `Quick test_cancel_rotation_negation;
        ] );
      ( "merge",
        [
          Alcotest.test_case "rz" `Quick test_merge_rz;
          Alcotest.test_case "exact identity" `Quick test_merge_exact_identity;
          Alcotest.test_case "2pi under control kept" `Quick test_merge_2pi_not_dropped;
          Alcotest.test_case "mixed axes kept" `Quick test_merge_mixed_axes_kept;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "drop identities" `Quick test_drop_identities;
          Alcotest.test_case "cascade" `Quick test_optimize_cascade;
          Alcotest.test_case "random circuits preserved" `Quick test_optimize_preserves_random_circuits;
          Alcotest.test_case "adjoint annihilates" `Quick test_optimize_reduces_redundant;
          Alcotest.test_case "reduction metric" `Quick test_gate_reduction_metric;
          Alcotest.test_case "reduction on empty circuit" `Quick test_gate_reduction_empty;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "global phase" `Quick test_equiv_global_phase;
          Alcotest.test_case "detects difference" `Quick test_equiv_detects_difference;
          Alcotest.test_case "sampling agrees" `Quick test_equiv_sampling_agrees;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest
          [ prop_optimize_preserves; prop_mutants_rejected ]);
    ]
