open Stats

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------------- Special ---------------- *)

let test_lgamma_known () =
  (* Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(1/2) = sqrt(pi) *)
  check_float "lgamma 1" 0. (Special.lgamma 1.) ~eps:1e-10;
  check_float "lgamma 2" 0. (Special.lgamma 2.) ~eps:1e-10;
  check_float "lgamma 5" (log 24.) (Special.lgamma 5.) ~eps:1e-9;
  check_float "lgamma 0.5" (0.5 *. log Float.pi) (Special.lgamma 0.5) ~eps:1e-9

let test_lgamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) *)
  List.iter
    (fun x ->
      check_float
        (Printf.sprintf "recurrence at %g" x)
        (Special.lgamma x +. log x)
        (Special.lgamma (x +. 1.))
        ~eps:1e-9)
    [ 0.3; 1.7; 4.2; 9.9 ]

let test_lbeta () =
  (* B(a,b) = Gamma(a) Gamma(b) / Gamma(a+b); B(1,1) = 1; B(2,3) = 1/12 *)
  check_float "lbeta 1 1" 0. (Special.lbeta 1. 1.) ~eps:1e-10;
  check_float "lbeta 2 3" (log (1. /. 12.)) (Special.lbeta 2. 3.) ~eps:1e-9

let test_betainc_uniform () =
  (* Beta(1,1) is uniform: I_x = x *)
  List.iter
    (fun x -> check_float "uniform cdf" x (Special.betainc 1. 1. x) ~eps:1e-9)
    [ 0.; 0.1; 0.33; 0.5; 0.9; 1. ]

let test_betainc_symmetry () =
  (* I_x(a, b) = 1 - I_{1-x}(b, a) *)
  List.iter
    (fun (a, b, x) ->
      check_float "symmetry"
        (Special.betainc a b x)
        (1. -. Special.betainc b a (1. -. x))
        ~eps:1e-10)
    [ (2., 3., 0.25); (0.5, 0.5, 0.7); (5., 1., 0.9); (3.3, 2.2, 0.01) ]

let test_betainc_monotone () =
  let prev = ref (-1.) in
  for i = 0 to 100 do
    let x = float_of_int i /. 100. in
    let v = Special.betainc 2.5 1.5 x in
    if v < !prev -. 1e-12 then Alcotest.fail "betainc not monotone";
    prev := v
  done

let test_erf () =
  check_float "erf 0" 0. (Special.erf 0.) ~eps:1e-7;
  check_float "erf 1" 0.8427007929 (Special.erf 1.) ~eps:1e-4;
  check_float "erf -1" (-0.8427007929) (Special.erf (-1.)) ~eps:1e-4

(* ---------------- Beta_dist ---------------- *)

let test_beta_moments () =
  let d = Beta_dist.make 2. 5. in
  check_float "mean" (2. /. 7.) (Beta_dist.mean d);
  check_float "variance" (2. *. 5. /. (49. *. 8.)) (Beta_dist.variance d)

let test_beta_cdf_limits () =
  let d = Beta_dist.make 3. 2. in
  check_float "cdf 0" 0. (Beta_dist.cdf d 0.);
  check_float "cdf 1" 1. (Beta_dist.cdf d 1.);
  let mid = Beta_dist.cdf d 0.5 in
  if mid <= 0. || mid >= 1. then Alcotest.fail "cdf interior out of range"

let test_beta_fit_moments () =
  let d = Beta_dist.fit_moments ~mean:0.3 ~variance:0.01 in
  check_float "fitted mean" 0.3 (Beta_dist.mean d) ~eps:1e-6;
  check_float "fitted variance" 0.01 (Beta_dist.variance d) ~eps:1e-6

let test_beta_fit_samples () =
  let rng = Rng.make 99 in
  let d_true = Beta_dist.make 4. 2. in
  let samples = Array.init 5000 (fun _ -> Beta_dist.sample d_true rng) in
  let d_fit = Beta_dist.fit samples in
  check_float "fit mean" (Beta_dist.mean d_true) (Beta_dist.mean d_fit) ~eps:0.02;
  check_float "fit var" (Beta_dist.variance d_true) (Beta_dist.variance d_fit)
    ~eps:0.01

let test_beta_pdf_integrates () =
  let d = Beta_dist.make 2.5 3.5 in
  let n = 2000 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let x = (float_of_int i +. 0.5) /. float_of_int n in
    acc := !acc +. (Beta_dist.pdf d x /. float_of_int n)
  done;
  check_float "pdf integral" 1. !acc ~eps:1e-3

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.make 5 and b = Rng.make 5 in
  for _ = 1 to 50 do
    check_float "same stream" (Rng.float a 1.) (Rng.float b 1.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.make 17 in
  let xs = Array.init 20000 (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:3.) in
  check_float "gaussian mean" 2. (Describe.mean xs) ~eps:0.1;
  check_float "gaussian std" 3. (Describe.stddev xs) ~eps:0.1

let test_rng_binomial () =
  let rng = Rng.make 19 in
  (* small n: exact Bernoulli loop *)
  let xs = Array.init 5000 (fun _ -> float_of_int (Rng.binomial rng ~n:10 ~p:0.3)) in
  check_float "binomial mean small" 3. (Describe.mean xs) ~eps:0.1;
  (* large n: Gaussian approximation path *)
  let ys = Array.init 5000 (fun _ -> float_of_int (Rng.binomial rng ~n:1000 ~p:0.5)) in
  check_float "binomial mean large" 500. (Describe.mean ys) ~eps:2.;
  check_float "binomial std large" (sqrt 250.) (Describe.stddev ys) ~eps:1.5;
  (* edges *)
  assert (Rng.binomial rng ~n:100 ~p:0. = 0);
  assert (Rng.binomial rng ~n:100 ~p:1. = 100)

let test_rng_categorical () =
  let rng = Rng.make 23 in
  let counts = Array.make 3 0 in
  for _ = 1 to 6000 do
    let k = Rng.categorical rng [| 1.; 2.; 3. |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_float "cat 0" 1000. (float_of_int counts.(0)) ~eps:150.;
  check_float "cat 2" 3000. (float_of_int counts.(2)) ~eps:220.

let test_rng_gamma_mean () =
  let rng = Rng.make 29 in
  let xs = Array.init 10000 (fun _ -> Rng.gamma rng ~shape:3.5) in
  check_float "gamma mean" 3.5 (Describe.mean xs) ~eps:0.1

(* ---------------- Describe ---------------- *)

let test_describe_basic () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check_float "mean" 2.5 (Describe.mean xs);
  check_float "min" 1. (Describe.min xs);
  check_float "max" 4. (Describe.max xs);
  check_float "median" 2.5 (Describe.median xs);
  check_float "variance" (5. /. 3.) (Describe.variance xs) ~eps:1e-9

let test_describe_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0. (Describe.percentile xs 0.);
  check_float "p50" 50. (Describe.percentile xs 50.);
  check_float "p100" 100. (Describe.percentile xs 100.)

let test_describe_histogram () =
  let xs = [| 0.1; 0.2; 0.55; 0.9; 1.5; -0.5 |] in
  let h = Describe.histogram ~bins:2 ~lo:0. ~hi:1. xs in
  Alcotest.(check (list int)) "bins" [ 3; 3 ] (Array.to_list h)

(* ---------------- golden values (Tests / Special) ----------------

   Reference values computed with mpmath at 40 significant digits, and —
   for the exact Kolmogorov-Smirnov distributions — with an independent
   rational-arithmetic implementation (Durbin matrix / lattice path
   counting over Fractions), so every row below is correct to well past
   double precision. Comparison is relative, so tail probabilities down
   to 1e-95 are held to the same number of significant digits as
   central values. *)

let check_rel ~rtol msg expected actual =
  let denom = Float.max (Float.abs expected) Float.min_float in
  if
    Float.abs (expected -. actual) > (rtol *. denom) +. 1e-300
    || Float.is_nan actual
  then
    Alcotest.failf "%s: expected %.17g, got %.17g (rel err %.3g)" msg expected
      actual
      (Float.abs (expected -. actual) /. denom)

(* (label, thunk, expected, relative tolerance) *)
let golden_special : (string * (unit -> float) * float * float) list =
  [
    ("lgamma 0.001", (fun () -> Special.lgamma 0.001), 6.9071788853838537, 1e-12);
    ("lgamma 12.3", (fun () -> Special.lgamma 12.3), 18.238983407092242, 1e-12);
    ("lgamma 150.5", (fun () -> Special.lgamma 150.5), 602.51395487058541, 1e-12);
    ("lbeta 1e-3 1e3", (fun () -> Special.lbeta 1e-3 1e3), 6.9002716296879550, 1e-12);
    ("lbeta 350 280", (fun () -> Special.lbeta 350. 280.), -434.38995275326938, 1e-12);
    (* extreme-parameter incomplete beta (the betacf iteration-cap and
       log1p front-factor regressions live here) *)
    ("betainc tiny-tiny", (fun () -> Special.betainc 0.001 0.001 0.5), 0.5, 1e-10);
    ("betainc 1000 2 0.999", (fun () -> Special.betainc 1000. 2. 0.999), 0.73539084954192809, 1e-9);
    ("betainc 500 500 0.48", (fun () -> Special.betainc 500. 500. 0.48), 0.10291752730699592, 1e-9);
    ("betainc 1e-4 10 1e-8", (fun () -> Special.betainc 1e-4 10. 1e-8), 0.99844203593158044, 1e-10);
    ("betainc 5 1e-4 0.9999", (fun () -> Special.betainc 5. 1e-4 0.9999), 7.1249387014159099e-4, 1e-10);
    ("betainc 0.5 0.5 1-1e-6", (fun () -> Special.betainc 0.5 0.5 0.999999), 0.99936338012152908, 1e-10);
    ("betainc 8 3 1e-12", (fun () -> Special.betainc 8. 3. 1e-12), 4.4999999999920000e-95, 1e-10);
    ("gammainc_p 0.5 1e-8", (fun () -> Special.gammainc_p 0.5 1e-8), 1.1283791633342487e-4, 1e-12);
    ("gammainc_p 300 280", (fun () -> Special.gammainc_p 300. 280.), 0.12260728267114314, 1e-11);
    ("gammainc_q 300 280", (fun () -> Special.gammainc_q 300. 280.), 0.87739271732885686, 1e-11);
    ("gammainc_p 1 1", (fun () -> Special.gammainc_p 1. 1.), 0.63212055882855768, 1e-12);
    ("gammainc_q 10 3", (fun () -> Special.gammainc_q 10. 3.), 0.99889751186988452, 1e-12);
    ("gammainc_q 0.5 50", (fun () -> Special.gammainc_q 0.5 50.), 1.5239706048321052e-23, 1e-11);
    ("erf 0.5", (fun () -> Special.erf 0.5), 0.52049987781304654, 1e-12);
    ("erf 2", (fun () -> Special.erf 2.), 0.99532226501895273, 1e-12);
    ("erfc 5", (fun () -> Special.erfc 5.), 1.5374597944280349e-12, 1e-11);
    ("erfc 10", (fun () -> Special.erfc 10.), 2.0884875837625448e-45, 1e-11);
    ("norm_sf 1.96", (fun () -> Special.norm_sf 1.96), 2.4997895148220434e-2, 1e-11);
    ("norm_sf 6", (fun () -> Special.norm_sf 6.), 9.8658764503769814e-10, 1e-11);
    ("norm_sf 10", (fun () -> Special.norm_sf 10.), 7.6198530241605261e-24, 1e-11);
    ("norm_sf -3", (fun () -> Special.norm_sf (-3.)), 0.99865010196836991, 1e-12);
  ]

let golden_survival : (string * (unit -> float) * float * float) list =
  [
    ("t_sf 2.5 7", (fun () -> Tests.t_sf 2.5 7.), 2.0496109292876448e-2, 1e-11);
    ("t_sf -1.3 3", (fun () -> Tests.t_sf (-1.3) 3.), 0.85776624563605130, 1e-11);
    ("t_sf 8 2", (fun () -> Tests.t_sf 8. 2.), 7.6340360826690691e-3, 1e-11);
    ("t_sf 4.2 60", (fun () -> Tests.t_sf 4.2 60.), 4.4927683781857029e-5, 1e-10);
    ("chi2_sf 3.84 1", (fun () -> Tests.chi2_sf 3.84 1.), 5.0043521248705099e-2, 1e-11);
    ("chi2_sf 0.1 5", (fun () -> Tests.chi2_sf 0.1 5.), 0.99983768338807738, 1e-12);
    ("chi2_sf 120 100", (fun () -> Tests.chi2_sf 120. 100.), 8.4406681093691830e-2, 1e-10);
    ("chi2_sf 300 10", (fun () -> Tests.chi2_sf 300. 10.), 1.5546747543803181e-58, 1e-10);
    ("kolmogorov_sf 0.5", (fun () -> Tests.kolmogorov_sf 0.5), 0.96394524366487509, 1e-12);
    ("kolmogorov_sf 1.0", (fun () -> Tests.kolmogorov_sf 1.0), 0.26999967167735452, 1e-12);
    ("kolmogorov_sf 2.0", (fun () -> Tests.kolmogorov_sf 2.0), 6.7092525577969535e-4, 1e-12);
  ]

(* fixed small datasets; statistics AND p-values pinned *)
let t1_xs = [| 2.1; 2.5; 1.9; 2.3; 2.7 |]
let t2_a = [| 12.1; 11.9; 12.4; 12.3; 11.8; 12.6 |]
let t2_b = [| 11.2; 11.5; 11.0; 11.7 |]
let t3_c = [| 1.0; 1.0; 2.0 |] (* tied values, minimal n *)
let t3_d = [| 2.0; 2.0; 3.0; 3.0 |]

let golden_ttests : (string * (unit -> float) * float * float) list =
  [
    ( "t1 statistic",
      (fun () -> (Tests.t_one_sample ~mu:2.0 t1_xs).Tests.statistic),
      2.1213203435596426, 1e-11 );
    ( "t1 two-sided p",
      (fun () -> (Tests.t_one_sample ~mu:2.0 t1_xs).Tests.pvalue),
      0.10119150721829545, 1e-10 );
    ( "t1 greater p",
      (fun () ->
        (Tests.t_one_sample ~alternative:Tests.Greater ~mu:2.0 t1_xs)
          .Tests.pvalue),
      5.0595753609147726e-2, 1e-10 );
    ( "welch statistic",
      (fun () -> (Tests.t_two_sample t2_a t2_b).Tests.statistic),
      4.1782891904054724, 1e-11 );
    ( "welch df",
      (fun () -> (Tests.t_two_sample t2_a t2_b).Tests.df),
      6.5002434472125294, 1e-11 );
    ( "welch two-sided p",
      (fun () -> (Tests.t_two_sample t2_a t2_b).Tests.pvalue),
      4.8828790791969742e-3, 1e-10 );
    ( "pooled statistic",
      (fun () -> (Tests.t_two_sample ~equal_var:true t2_a t2_b).Tests.statistic),
      4.1931393468876732, 1e-11 );
    ( "pooled two-sided p",
      (fun () -> (Tests.t_two_sample ~equal_var:true t2_a t2_b).Tests.pvalue),
      3.0247456583711371e-3, 1e-10 );
    ( "tied small-n statistic",
      (fun () -> (Tests.t_two_sample t3_c t3_d).Tests.statistic),
      -2.6457513110645906, 1e-11 );
    ( "tied small-n df",
      (fun () -> (Tests.t_two_sample t3_c t3_d).Tests.df),
      4.4545454545454546, 1e-11 );
    ( "tied small-n less p",
      (fun () ->
        (Tests.t_two_sample ~alternative:Tests.Less t3_c t3_d).Tests.pvalue),
      2.5635647517661071e-2, 1e-10 );
    ( "chi2 gof statistic",
      (fun () ->
        (Tests.chi2_gof ~expected:[| 20.; 50.; 30. |] [| 18.; 55.; 27. |])
          .Tests.statistic),
      1.0, 1e-12 );
    ( "chi2 gof p",
      (fun () ->
        (Tests.chi2_gof ~expected:[| 20.; 50.; 30. |] [| 18.; 55.; 27. |])
          .Tests.pvalue),
      0.60653065971263342, 1e-11 );
    ( "chi2 gof p ddof=1",
      (fun () ->
        (Tests.chi2_gof ~ddof:1 ~expected:[| 20.; 50.; 30. |]
           [| 18.; 55.; 27. |])
          .Tests.pvalue),
      0.31731050786291410, 1e-11 );
  ]

(* one-sample data: 10 points on a 0.01 grid vs U(0,1), D = 11/100 exactly;
   two-sample: no ties by construction (b is a-grid shifted by 0.01) *)
let ks1_xs = [| 0.05; 0.18; 0.22; 0.41; 0.47; 0.55; 0.61; 0.72; 0.88; 0.94 |]
let ks2_a = [| 0.1; 0.3; 0.5; 0.7; 0.9 |]
let ks2_b = [| 0.21; 0.41; 0.61; 0.81; 1.01; 1.21 |]
let ks2_c = [| 0.10; 0.20; 0.30; 0.40 |] (* disjoint from ks2_e: D = 1 *)
let ks2_e = [| 0.55; 0.65; 0.75; 0.85 |]

let golden_ks : (string * (unit -> float) * float * float) list =
  [
    (* exact D_n CDF: small n, tail d, large n near the matrix-rescaling
       regime, and the n = 140 limit of the exact path *)
    ("ks_cdf_exact 10 0.3", (fun () -> Tests.ks_cdf_exact 10 0.3), 0.72946442520000000, 1e-10);
    ("ks_cdf_exact 5 0.4", (fun () -> Tests.ks_cdf_exact 5 0.4), 0.69120000000000000, 1e-10);
    ("ks_cdf_exact 100 0.1", (fun () -> Tests.ks_cdf_exact 100 0.1), 0.74730724299360987, 1e-9);
    ("ks_cdf_exact 2 0.6", (fun () -> Tests.ks_cdf_exact 2 0.6), 0.68000000000000000, 1e-10);
    ("ks_cdf_exact 25 0.25", (fun () -> Tests.ks_cdf_exact 25 0.25), 0.92699402941432649, 1e-10);
    ("ks_cdf_exact 140 0.05", (fun () -> Tests.ks_cdf_exact 140 0.05), 0.14235197023438896, 1e-9);
    ( "ks1 statistic",
      (fun () ->
        (Tests.ks_one_sample ~cdf:(fun x -> x) ks1_xs).Tests.statistic),
      0.11, 1e-12 );
    ( "ks1 exact p",
      (fun () -> (Tests.ks_one_sample ~cdf:(fun x -> x) ks1_xs).Tests.pvalue),
      0.99834230728422093, 1e-10 );
    ( "ks2 statistic",
      (fun () -> (Tests.ks_two_sample ks2_a ks2_b).Tests.statistic),
      1. /. 3., 1e-12 );
    ( "ks2 exact p",
      (fun () -> (Tests.ks_two_sample ks2_a ks2_b).Tests.pvalue),
      0.81818181818181818, 1e-11 );
    ( "ks2 disjoint p",
      (fun () -> (Tests.ks_two_sample ks2_c ks2_e).Tests.pvalue),
      2.8571428571428571e-2, 1e-11 );
  ]

let run_golden rows () =
  List.iter (fun (msg, thunk, expected, rtol) ->
      check_rel ~rtol msg expected (thunk ()))
    rows

(* ---------------- SPRT ---------------- *)

let test_sprt_boundaries () =
  let s = Sprt.make ~alpha:0.05 ~beta:0.05 in
  let log_b, log_a = Sprt.boundaries s in
  check_float "log A" (log 19.) log_a ~eps:1e-12;
  check_float "log B" (log (0.05 /. 0.95)) log_b ~eps:1e-12;
  (match Sprt.decide s with
  | Sprt.Continue -> ()
  | _ -> Alcotest.fail "fresh SPRT must continue");
  List.iter
    (fun (a, b) ->
      match Sprt.make ~alpha:a ~beta:b with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "Sprt.make %g %g should raise" a b)
    [ (0., 0.05); (0.05, 1.); (-0.1, 0.5); (0.5, 0.) ]

let test_sprt_bernoulli_reject () =
  (* p1/p0 = 25: a single success overwhelms the alpha = beta = 0.05
     boundary log 19 *)
  let s = Sprt.make ~alpha:0.05 ~beta:0.05 in
  let s = Sprt.observe_bernoulli ~p0:0.01 ~p1:0.25 s true in
  (match Sprt.decide s with
  | Sprt.Reject_h0 -> ()
  | _ -> Alcotest.fail "one violation at LLR log 25 must reject");
  check_float "llr" (log 25.) (Sprt.log_lr s) ~eps:1e-12

let test_sprt_bernoulli_accept () =
  (* per-pass LLR log (0.75 / 0.99) = -0.2776; the accept boundary
     -log 19 = -2.944 is crossed at exactly ceil (2.944 / 0.2776) = 11 *)
  let rec go s k =
    match Sprt.decide s with
    | Sprt.Accept_h0 -> k
    | Sprt.Reject_h0 -> Alcotest.fail "all-passes run must not reject"
    | Sprt.Continue ->
        if k > 100 then Alcotest.fail "accept boundary never crossed"
        else go (Sprt.observe_bernoulli ~p0:0.01 ~p1:0.25 s false) (k + 1)
  in
  let crossed_at = go (Sprt.make ~alpha:0.05 ~beta:0.05) 0 in
  Alcotest.(check int) "passes to accept" 11 crossed_at

let test_sprt_wald_error_rates () =
  (* operating characteristic: under H0 the rejection rate must stay
     near alpha (Wald's bound alpha / (1 - beta) ~ 0.053 plus overshoot;
     0.1 leaves slack for 400 trials), and under H1 the acceptance rate
     near beta *)
  let rng = Rng.make 4242 in
  let trials = 400 and cap = 2000 in
  let run p =
    let rec go s k =
      if k >= cap then Sprt.decide s
      else
        match Sprt.decide s with
        | Sprt.Continue ->
            go
              (Sprt.observe_bernoulli ~p0:0.05 ~p1:0.3 s (Rng.float rng 1. < p))
              (k + 1)
        | d -> d
    in
    go (Sprt.make ~alpha:0.05 ~beta:0.05) 0
  in
  let count pred p =
    let c = ref 0 in
    for _ = 1 to trials do
      if pred (run p) then incr c
    done;
    float_of_int !c /. float_of_int trials
  in
  let false_reject = count (fun d -> d = Sprt.Reject_h0) 0.05 in
  let false_accept = count (fun d -> d = Sprt.Accept_h0) 0.3 in
  if false_reject > 0.1 then
    Alcotest.failf "false-reject rate %.3f exceeds bound" false_reject;
  if false_accept > 0.1 then
    Alcotest.failf "false-accept rate %.3f exceeds bound" false_accept

(* ---------------- bench-regression gate ---------------- *)

(* the acceptance contract of [make bench-check]: identical back-to-back
   runs pass, an injected 10x slowdown or counter drift fails, and rows
   without enough timing samples are skipped rather than guessed at *)

let bench_json rows =
  Printf.sprintf
    {|{ "schema": "morphqpv-bench-v2", "default_domains": 1, "results": [%s] }|}
    (String.concat ", " rows)

let bench_row ?(metrics = {|"shots": 4096|}) name samples =
  Printf.sprintf
    {|{"name": %S, "seconds": %g, "samples": [%s], "metrics": {%s}}|}
    name
    (List.nth samples (List.length samples / 2))
    (String.concat ", " (List.map (Printf.sprintf "%g") samples))
    metrics

let parse_run_exn src =
  match Testkit.Benchgate.parse_run src with
  | Ok run -> run
  | Error e -> Alcotest.failf "parse_run: %s" e

let test_benchgate_identical () =
  let run =
    parse_run_exn
      (bench_json
         [
           bench_row "kernel/a" [ 0.010; 0.011; 0.0105 ];
           bench_row "kernel/b" [ 1.2; 1.25; 1.22 ];
         ])
  in
  let report = Testkit.Benchgate.compare_runs ~prev:run run in
  Alcotest.(check int) "no regressions" 0
    (List.length report.Testkit.Benchgate.regressions);
  Alcotest.(check int) "both rows compared" 2 report.Testkit.Benchgate.compared

let test_benchgate_slowdown () =
  let prev =
    parse_run_exn (bench_json [ bench_row "kernel/a" [ 0.010; 0.011; 0.0105 ] ])
  in
  let cur =
    parse_run_exn (bench_json [ bench_row "kernel/a" [ 0.100; 0.110; 0.105 ] ])
  in
  match
    (Testkit.Benchgate.compare_runs ~prev cur).Testkit.Benchgate.regressions
  with
  | [ f ] ->
      Alcotest.(check string) "record" "kernel/a" f.Testkit.Benchgate.record;
      (match f.Testkit.Benchgate.pvalue with
      | Some p when p < 0.01 -> ()
      | _ -> Alcotest.fail "slowdown must carry a significant p-value")
  | fs -> Alcotest.failf "expected exactly one regression, got %d" (List.length fs)

let test_benchgate_counter_drift () =
  let prev =
    parse_run_exn (bench_json [ bench_row "kernel/a" [ 0.01; 0.011; 0.0105 ] ])
  in
  let cur =
    parse_run_exn
      (bench_json
         [
           bench_row ~metrics:{|"shots": 5000|} "kernel/a"
             [ 0.01; 0.011; 0.0105 ];
         ])
  in
  match
    (Testkit.Benchgate.compare_runs ~prev cur).Testkit.Benchgate.regressions
  with
  | [ f ] ->
      if f.Testkit.Benchgate.pvalue <> None then
        Alcotest.fail "counter comparison is exact, not statistical"
  | fs -> Alcotest.failf "expected one counter drift, got %d" (List.length fs)

let test_benchgate_skips () =
  (* a jittery-but-equivalent pair must NOT be flagged even when one
     side is slightly slower; rows with < 2 samples are only skipped *)
  let prev =
    parse_run_exn
      (bench_json
         [
           bench_row "kernel/a" [ 0.010; 0.011; 0.0105 ];
           {|{"name": "exp", "seconds": 2.0, "metrics": {}}|};
         ])
  in
  let cur =
    parse_run_exn
      (bench_json
         [
           bench_row "kernel/a" [ 0.0104; 0.0112; 0.0108 ];
           {|{"name": "exp", "seconds": 9.0, "metrics": {}}|};
         ])
  in
  let report = Testkit.Benchgate.compare_runs ~prev cur in
  Alcotest.(check int) "no regressions" 0
    (List.length report.Testkit.Benchgate.regressions);
  Alcotest.(check bool) "sample-less row skipped" true
    (List.exists
       (fun s -> String.length s >= 3 && String.sub s 0 3 = "exp")
       report.Testkit.Benchgate.skipped)

let test_benchgate_rejects_garbage () =
  List.iter
    (fun src ->
      match Testkit.Benchgate.parse_run src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse_run accepted %S" src)
    [
      "";
      "{";
      {|{"schema": "something-else", "results": []}|};
      {|{"schema": "morphqpv-bench-v2"}|};
      {|{"schema": "morphqpv-bench-v2", "results": [{"seconds": 1}]}|};
    ]

(* ---------------- qcheck ---------------- *)

let prop_betainc_bounds =
  QCheck.Test.make ~name:"betainc in [0,1]" ~count:200
    QCheck.(triple (float_range 0.1 10.) (float_range 0.1 10.) (float_range 0. 1.))
    (fun (a, b, x) ->
      let v = Special.betainc a b x in
      v >= 0. && v <= 1.)

let prop_beta_fit_roundtrip =
  QCheck.Test.make ~name:"fit_moments roundtrip" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (float_range 0.0005 0.02))
    (fun (m, v) ->
      let d = Beta_dist.fit_moments ~mean:m ~variance:v in
      Float.abs (Beta_dist.mean d -. m) < 1e-3
      || Beta_dist.variance d < v +. 1e-6)

let prop_pvalue_range =
  QCheck.Test.make ~name:"test p-values in [0,1]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 12) (float_range (-5.) 5.))
        (list_of_size Gen.(2 -- 12) (float_range (-5.) 5.)))
    (fun (xs, ys) ->
      let xs = Array.of_list xs and ys = Array.of_list ys in
      match Tests.t_two_sample xs ys with
      | { Tests.pvalue; _ } -> pvalue >= 0. && pvalue <= 1.
      | exception Invalid_argument _ -> true (* degenerate variance *))

let prop_ks2_symmetric =
  QCheck.Test.make ~name:"ks_two_sample symmetric in its arguments" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 10) (float_range 0. 1.))
        (list_of_size Gen.(2 -- 10) (float_range 0. 1.)))
    (fun (xs, ys) ->
      let xs = Array.of_list xs and ys = Array.of_list ys in
      let a = Tests.ks_two_sample xs ys and b = Tests.ks_two_sample ys xs in
      Float.abs (a.Tests.statistic -. b.Tests.statistic) < 1e-12
      && Float.abs (a.Tests.pvalue -. b.Tests.pvalue) < 1e-9)

let prop_chi2_gof_consistent =
  (* the packaged test must agree with the survival function it is built
     from, on its own reported statistic and df *)
  QCheck.Test.make ~name:"chi2_gof p = chi2_sf(statistic, df)" ~count:100
    QCheck.(list_of_size Gen.(2 -- 8) (int_range 1 60))
    (fun counts ->
      let observed = Array.of_list (List.map float_of_int counts) in
      let total = Array.fold_left ( +. ) 0. observed in
      let k = Array.length observed in
      let expected = Array.make k (total /. float_of_int k) in
      let r = Tests.chi2_gof ~expected observed in
      Float.abs (r.Tests.pvalue -. Tests.chi2_sf r.Tests.statistic r.Tests.df)
      < 1e-12)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_betainc_bounds;
      prop_beta_fit_roundtrip;
      prop_pvalue_range;
      prop_ks2_symmetric;
      prop_chi2_gof_consistent;
    ]

let () =
  Alcotest.run "stats"
    [
      ( "special",
        [
          Alcotest.test_case "lgamma known" `Quick test_lgamma_known;
          Alcotest.test_case "lgamma recurrence" `Quick test_lgamma_recurrence;
          Alcotest.test_case "lbeta" `Quick test_lbeta;
          Alcotest.test_case "betainc uniform" `Quick test_betainc_uniform;
          Alcotest.test_case "betainc symmetry" `Quick test_betainc_symmetry;
          Alcotest.test_case "betainc monotone" `Quick test_betainc_monotone;
          Alcotest.test_case "erf" `Quick test_erf;
        ] );
      ( "beta-dist",
        [
          Alcotest.test_case "moments" `Quick test_beta_moments;
          Alcotest.test_case "cdf limits" `Quick test_beta_cdf_limits;
          Alcotest.test_case "fit moments" `Quick test_beta_fit_moments;
          Alcotest.test_case "fit samples" `Quick test_beta_fit_samples;
          Alcotest.test_case "pdf integrates" `Quick test_beta_pdf_integrates;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "binomial" `Quick test_rng_binomial;
          Alcotest.test_case "categorical" `Quick test_rng_categorical;
          Alcotest.test_case "gamma mean" `Quick test_rng_gamma_mean;
        ] );
      ( "describe",
        [
          Alcotest.test_case "basic" `Quick test_describe_basic;
          Alcotest.test_case "percentile" `Quick test_describe_percentile;
          Alcotest.test_case "histogram" `Quick test_describe_histogram;
        ] );
      ( "tests",
        [
          Alcotest.test_case "golden special" `Quick (run_golden golden_special);
          Alcotest.test_case "golden survival" `Quick (run_golden golden_survival);
          Alcotest.test_case "golden t / chi2" `Quick (run_golden golden_ttests);
          Alcotest.test_case "golden ks" `Quick (run_golden golden_ks);
        ] );
      ( "sprt",
        [
          Alcotest.test_case "boundaries" `Quick test_sprt_boundaries;
          Alcotest.test_case "bernoulli reject" `Quick test_sprt_bernoulli_reject;
          Alcotest.test_case "bernoulli accept" `Quick test_sprt_bernoulli_accept;
          Alcotest.test_case "wald error rates" `Quick test_sprt_wald_error_rates;
        ] );
      ( "benchgate",
        [
          Alcotest.test_case "identical runs pass" `Quick test_benchgate_identical;
          Alcotest.test_case "10x slowdown fails" `Quick test_benchgate_slowdown;
          Alcotest.test_case "counter drift fails" `Quick test_benchgate_counter_drift;
          Alcotest.test_case "jitter and sample-less rows" `Quick test_benchgate_skips;
          Alcotest.test_case "malformed input rejected" `Quick test_benchgate_rejects_garbage;
        ] );
      ("properties", qcheck_tests);
    ]
