(* Translation validation: every certificate-emitting pass variant must
   produce a certificate the independent checker accepts, and every
   deliberately broken pass (Testkit.Mutate) must be rejected with a
   structured diagnostic. *)

open Transpile

let examples_dir =
  List.find Sys.file_exists [ "../examples/qasm"; "examples/qasm" ]

let check_ok msg cert before after =
  match Certify.check cert before after with
  | Ok s -> s
  | Error fs ->
      Alcotest.failf "%s: checker rejected a genuine certificate:@.%s" msg
        (String.concat "\n" (List.map Certify.failure_message fs))

let kinds fs = List.sort_uniq compare (List.map (fun f -> f.Certify.kind) fs)

(* ---------------- per-pass certificates on pinned circuits ------------ *)

let test_cancel_cert () =
  let c = Circuit.(empty 2 |> h 0 |> x 1 |> h 0 |> cx 0 1) in
  let c', st = Passes.cancel_inverses_cert c in
  Alcotest.(check int) "hh gone" 2 (Circuit.gate_count c');
  let s = check_ok "cancel" [ st ] c c' in
  Alcotest.(check int) "one deletion group" 1 s.Certify.local_equiv;
  Alcotest.(check int) "x and cx mapped" 2 s.Certify.permutation

let test_merge_cert () =
  let c = Circuit.(empty 1 |> rz 0.3 0 |> rz 0.4 0) in
  let c', st = Passes.merge_rotations_cert c in
  Alcotest.(check int) "merged" 1 (Circuit.gate_count c');
  let s = check_ok "merge" [ st ] c c' in
  Alcotest.(check int) "one group" 1 s.Certify.local_equiv

let test_merge_identity_cert () =
  (* rz(x) rz(4pi - x): merged away entirely — a deletion group *)
  let c = Circuit.(empty 1 |> rz 1.0 0 |> rz ((4. *. Float.pi) -. 1.0) 0) in
  let c', st = Passes.merge_rotations_cert c in
  Alcotest.(check int) "vanished" 0 (Circuit.gate_count c');
  ignore (check_ok "merge to identity" [ st ] c c')

let test_drop_cert () =
  let c = Circuit.(empty 2 |> rz 0. 0 |> crz 0. 0 1 |> h 0) in
  let c', st = Passes.drop_identities_cert c in
  Alcotest.(check int) "only h" 1 (Circuit.gate_count c');
  let s = check_ok "drop" [ st ] c c' in
  (* crz(0) is recorded under its base name "rz": still the identity *)
  Alcotest.(check int) "two identity elims" 2 s.Certify.identity_elim

let test_fuse_cert () =
  let c = Circuit.(empty 2 |> h 0 |> t_gate 0 |> s 0 |> cx 0 1) in
  let c', st = Passes.fuse_1q_cert c in
  Alcotest.(check int) "fused + cx" 2 (Circuit.gate_count c');
  let s = check_ok "fuse" [ st ] c c' in
  Alcotest.(check int) "one fusion group" 1 s.Certify.local_equiv

let test_prune_cert () =
  (* h 2 influences nothing observed: pruned with an Outside_cone witness *)
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> h 2 |> tracepoint 1 [ 0; 1 ]) in
  let c', st = Passes.prune_lightcone_cert c in
  let s = check_ok "prune" [ st ] c c' in
  Alcotest.(check int) "one pruned" 1 s.Certify.outside_cone

let test_optimize_cert_chain () =
  (* h x x h cascades across fixpoint iterations: a multi-step chain *)
  let c = Circuit.(empty 1 |> h 0 |> x 0 |> x 0 |> h 0) in
  let c', cert = Passes.optimize_cert c in
  Alcotest.(check int) "annihilated" 0 (Circuit.gate_count c');
  let s = check_ok "optimize chain" cert c c' in
  Alcotest.(check bool) "several steps" true (s.Certify.chain_steps >= 2);
  Alcotest.(check bool)
    "plain optimize is fst of the certified run" true
    (Passes.optimize c = c')

let test_segments_cert () =
  (* two fused blocks split by a barrier, a measurement fence after *)
  let c =
    Circuit.(
      empty ~clbits:1 2 |> h 0 |> t_gate 0 |> h 0
      |> barrier [ 0; 1 ]
      |> h 1 |> s 1 |> h 1 |> measure 0 0)
  in
  let plan, st = Segments.compile_cert c in
  (match Certify.check_plan [ st ] c plan with
  | Ok s ->
      Alcotest.(check bool) "fused something" true (s.Certify.local_equiv >= 1);
      Alcotest.(check int) "barrier accounted" 1 s.Certify.barrier_elim
  | Error fs ->
      Alcotest.failf "segments: rejected:@.%s"
        (String.concat "\n" (List.map Certify.failure_message fs)));
  Alcotest.(check bool)
    "plain compile is fst of the certified compile" true
    (Segments.compile c = plan)

let test_segments_cert_clifford_direct () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> s 1 |> h 0 |> h 0) in
  let plan, st = Segments.compile_cert ~clifford_direct:true c in
  match Certify.check_plan [ st ] c plan with
  | Ok _ -> ()
  | Error fs ->
      Alcotest.failf "clifford-direct: rejected:@.%s"
        (String.concat "\n" (List.map Certify.failure_message fs))

(* ---------------- end-to-end over the example corpus ------------------ *)

let test_examples_certified () =
  Sys.readdir examples_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".qasm")
  |> List.iter (fun f ->
         let full = Qasm.parse_file_full (Filename.concat examples_dir f) in
         let report =
           Morphcore.Verify.certify_transpile ~locs:full.Qasm.locs
             full.Qasm.circuit
         in
         if not report.Morphcore.Verify.certified then
           Alcotest.failf "%s: certification failed:@.%s" f
             (String.concat "\n"
                (List.map Certify.failure_message
                   report.Morphcore.Verify.cert_failures));
         if
           Certify.total_obligations report.Morphcore.Verify.cert_summary = 0
         then Alcotest.failf "%s: pipeline discharged zero obligations" f)

(* ---------------- mutants: the checker's soundness -------------------- *)

let mutant_case name build expected_kind =
  let c = build () in
  match name c with
  | exception e -> Alcotest.failf "mutant raised %s" (Printexc.to_string e)
  | None -> Alcotest.fail "mutant not applicable to its pinned circuit"
  | Some m ->
      let fs = Testkit.Mutate.failures m in
      if fs = [] then
        Alcotest.failf "checker ACCEPTED mutant %s" m.Testkit.Mutate.mutant_name;
      if not (List.mem expected_kind (kinds fs)) then
        Alcotest.failf "mutant %s rejected for %s, expected kind %s"
          m.Testkit.Mutate.mutant_name
          (String.concat "," (kinds fs))
          expected_kind

let test_mutant_wrong_replacement () =
  mutant_case Testkit.Mutate.wrong_replacement
    (fun () -> Circuit.(empty 1 |> h 0 |> t_gate 0 |> s 0))
    "local_equiv"

let test_mutant_over_pruned () =
  mutant_case Testkit.Mutate.over_pruned
    (fun () -> Circuit.(empty 2 |> h 0 |> cx 0 1 |> tracepoint 1 [ 0; 1 ]))
    "outside_cone"

let test_mutant_reordered_measurement () =
  mutant_case Testkit.Mutate.reordered_measurement
    (fun () -> Circuit.(empty ~clbits:1 1 |> h 0 |> measure 0 0))
    "permutation"

let test_mutant_wrong_block () =
  mutant_case Testkit.Mutate.wrong_block
    (fun () -> Circuit.(empty 2 |> h 0 |> t_gate 0 |> cx 0 1 |> s 1))
    "local_equiv"

let test_forged_identity_rejected () =
  (* drop_identities would never drop rz(0.4); a forged Identity_elim
     obligation for it must not slip through *)
  let c = Circuit.(empty 1 |> rz 0.4 0 |> h 0) in
  let out = Circuit.(empty 1 |> h 0) in
  let st =
    {
      Certify.pass = "forged_drop";
      obligations = [ Certify.Identity_elim { index = 0; eps = 1e-12 } ];
      mapped = [ (1, 0) ];
      output = Certify.Circ out;
    }
  in
  match Certify.check [ st ] c out with
  | Ok _ -> Alcotest.fail "checker accepted a forged identity elimination"
  | Error fs ->
      Alcotest.(check bool)
        "identity_elim diagnostic" true
        (List.mem "identity_elim" (kinds fs))

let test_unaccounted_rejected () =
  (* an output instruction the certificate never explains *)
  let c = Circuit.(empty 1 |> h 0) in
  let out = Circuit.(empty 1 |> h 0 |> s 0) in
  let st =
    {
      Certify.pass = "forged_insert";
      obligations = [];
      mapped = [ (0, 0) ];
      output = Certify.Circ out;
    }
  in
  match Certify.check [ st ] c out with
  | Ok _ -> Alcotest.fail "checker accepted an unexplained insertion"
  | Error fs ->
      Alcotest.(check bool) "coverage" true (List.mem "coverage" (kinds fs))

(* ---------------- certified plan cache separation --------------------- *)

let test_cert_cache_separation () =
  let c = Circuit.(empty 2 |> h 0 |> t_gate 0 |> cx 0 1) in
  let cache = Cache.create () in
  (* warm the UNcertified plan cache *)
  let plain = Segments.compile ~cache c in
  let s0 = Cache.stats cache in
  (* a certified request must not be served the uncertified entry *)
  let plan, _ = Segments.compile_cert ~cache c in
  let s1 = Cache.stats cache in
  Alcotest.(check bool)
    "certified compile missed the uncertified entry" true
    (s1.Cache.misses > s0.Cache.misses);
  (* ... but memoizes under its own key from then on *)
  let _ = Segments.compile_cert ~cache c in
  let s2 = Cache.stats cache in
  Alcotest.(check bool)
    "second certified compile hits" true
    (s2.Cache.hits > s1.Cache.hits && s2.Cache.misses = s1.Cache.misses);
  (* both key families compile the same plan *)
  Alcotest.(check bool) "same plan" true (plain = plan)

let test_cached_cert_still_checked () =
  let c = Circuit.(empty 1 |> h 0 |> t_gate 0) in
  let cache = Cache.create () in
  let r1 = Morphcore.Verify.certify_transpile ~cache c in
  let r2 = Morphcore.Verify.certify_transpile ~cache c in
  Alcotest.(check bool) "first run certified" true r1.Morphcore.Verify.certified;
  Alcotest.(check bool) "cached run certified" true r2.Morphcore.Verify.certified;
  Alcotest.(check bool)
    "same plan from cache" true
    (r1.Morphcore.Verify.cert_plan = r2.Morphcore.Verify.cert_plan)

(* ---------------- properties ------------------------------------------ *)

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> 30)
  | None -> 30

let prop_certified_sound_pure =
  QCheck.Test.make ~name:"certified passes sound (pure)" ~count:qcheck_count
    (Testkit.Gen.pure ~max_qubits:3 ())
    Testkit.Oracle.certified_pass_sound

let prop_certified_sound_program =
  QCheck.Test.make ~name:"certified passes sound (programs)"
    ~count:qcheck_count
    (Testkit.Gen.program ~max_qubits:3 ())
    Testkit.Oracle.certified_pass_sound

let prop_mutants_rejected =
  QCheck.Test.make ~name:"mutants rejected" ~count:qcheck_count
    (Testkit.Gen.program ~max_qubits:3 ())
    Testkit.Oracle.certified_mutants_rejected

let () =
  Alcotest.run "certify"
    [
      ( "passes",
        [
          Alcotest.test_case "cancel_inverses" `Quick test_cancel_cert;
          Alcotest.test_case "merge_rotations" `Quick test_merge_cert;
          Alcotest.test_case "merge to identity" `Quick test_merge_identity_cert;
          Alcotest.test_case "drop_identities" `Quick test_drop_cert;
          Alcotest.test_case "fuse_1q" `Quick test_fuse_cert;
          Alcotest.test_case "prune_lightcone" `Quick test_prune_cert;
          Alcotest.test_case "optimize chain" `Quick test_optimize_cert_chain;
          Alcotest.test_case "segments" `Quick test_segments_cert;
          Alcotest.test_case "segments clifford-direct" `Quick
            test_segments_cert_clifford_direct;
          Alcotest.test_case "example corpus" `Quick test_examples_certified;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "wrong replacement" `Quick
            test_mutant_wrong_replacement;
          Alcotest.test_case "over-pruned cone" `Quick test_mutant_over_pruned;
          Alcotest.test_case "reordered measurement" `Quick
            test_mutant_reordered_measurement;
          Alcotest.test_case "wrong block" `Quick test_mutant_wrong_block;
          Alcotest.test_case "forged identity" `Quick
            test_forged_identity_rejected;
          Alcotest.test_case "unexplained insertion" `Quick
            test_unaccounted_rejected;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key separation" `Quick test_cert_cache_separation;
          Alcotest.test_case "cached cert re-checked" `Quick
            test_cached_cert_still_checked;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_certified_sound_pure;
            prop_certified_sound_program;
            prop_mutants_rejected;
          ] );
    ]
