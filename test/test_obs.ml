(* Observability substrate: span nesting and ordering, histogram bucket
   edges, counter determinism across pool domain counts, the Chrome
   trace_event JSONL golden, the disabled-is-noop contract, and the
   obs_transparent oracle (enabling observability never perturbs engine
   outputs). *)

open Morphcore
open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

(* Every unit test runs against a clean, enabled registry and restores
   the binary-wide default (disabled, wall clock) on the way out, so test
   order never leaks state. *)
let with_obs f () =
  Obs.configure ~enabled:true;
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock_for_testing None;
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.configure ~enabled:false)
    f

(* a deterministic clock ticking 1 microsecond per read *)
let tick_clock () =
  let t = ref (-1.) in
  fun () ->
    t := !t +. 1.;
    !t

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let since = Obs.Span.mark () in
  let r =
    Obs.Span.with_ ~name:"outer" @@ fun () ->
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> 1));
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> 2));
    42
  in
  Alcotest.(check int) "with_ returns f's value" 42 r;
  let evs = Obs.Span.events ~since () in
  let tag (ev : Obs.Span.event) =
    (ev.name, match ev.ph with Obs.Span.B -> "B" | Obs.Span.E -> "E")
  in
  Alcotest.(check (list (pair string string)))
    "B/E bracketing order"
    [
      ("outer", "B");
      ("inner", "B");
      ("inner", "E");
      ("inner", "B");
      ("inner", "E");
      ("outer", "E");
    ]
    (List.map tag evs);
  (* seqs are the total order *)
  let seqs = List.map (fun (ev : Obs.Span.event) -> ev.seq) evs in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.sort compare seqs = seqs && List.sort_uniq compare seqs = seqs);
  (* parent links: both inner spans hang off outer; outer is a root *)
  let outer_b = List.hd evs in
  Alcotest.(check int) "outer is a root" (-1) outer_b.Obs.Span.parent;
  List.iter
    (fun (ev : Obs.Span.event) ->
      if ev.name = "inner" then
        Alcotest.(check int)
          ("inner parent (" ^ string_of_int ev.seq ^ ")")
          outer_b.Obs.Span.span ev.parent)
    evs

let test_span_closes_on_raise () =
  let since = Obs.Span.mark () in
  (try
     Obs.Span.with_ ~name:"boom" (fun () -> failwith "expected") |> ignore
   with Failure _ -> ());
  let evs = Obs.Span.events ~since () in
  Alcotest.(check int) "B and E both recorded" 2 (List.length evs);
  Alcotest.(check bool) "last is E" true
    ((List.nth evs 1).Obs.Span.ph = Obs.Span.E);
  (* the stack unwound: a sibling span opened next is again a root *)
  let r = Obs.Span.with_ ~name:"after" (fun () -> Obs.Span.events ~since ()) in
  let after_b =
    List.find (fun (ev : Obs.Span.event) -> ev.name = "after") r
  in
  Alcotest.(check int) "sibling after raise is a root" (-1)
    after_b.Obs.Span.parent

let test_span_summary () =
  Obs.set_clock_for_testing (Some (tick_clock ()));
  let since = Obs.Span.mark () in
  ( Obs.Span.with_ ~name:"outer" @@ fun () ->
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> ()));
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> ())) );
  (* ticks: outer B=0, inner B=1 E=2, inner B=3 E=4, outer E=5
     -> inner total 2us over 2 runs, outer total 5us over 1 run *)
  match Obs.Span.summary ~since () with
  | [ a; b ] ->
      Alcotest.(check string) "slowest first" "outer" a.Obs.Span.name;
      Alcotest.(check int) "outer count" 1 a.Obs.Span.count;
      Alcotest.(check (float 1e-12)) "outer total" 5e-6 a.Obs.Span.total_s;
      Alcotest.(check string) "then inner" "inner" b.Obs.Span.name;
      Alcotest.(check int) "inner count" 2 b.Obs.Span.count;
      Alcotest.(check (float 1e-12)) "inner total" 2e-6 b.Obs.Span.total_s
  | rows -> Alcotest.failf "expected 2 summary rows, got %d" (List.length rows)

let test_span_ring_bound () =
  (* the ring keeps a bounded prefix and counts the overflow *)
  let before = Obs.Span.dropped () in
  for _ = 1 to 40_000 do
    Obs.Span.with_ ~name:"spin" (fun () -> ())
  done;
  Alcotest.(check bool) "overflow counted" true (Obs.Span.dropped () > before);
  Alcotest.(check int) "ring holds its capacity" 65536
    (List.length (Obs.Span.events ()));
  Obs.Span.reset ();
  Alcotest.(check int) "reset clears dropped" 0 (Obs.Span.dropped ())

(* ---------------- metrics ---------------- *)

let find_hist name =
  let entries = Obs.Metrics.snapshot () in
  match
    List.find_opt (fun (e : Obs.Metrics.entry) -> e.name = name) entries
  with
  | Some { data = Obs.Metrics.Histogram h; _ } -> h
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_histogram_edges () =
  let buckets = [| 1.; 2.; 4. |] in
  (* upper edges are inclusive: v <= edge lands in that bucket *)
  List.iter
    (fun v -> Obs.Metrics.observe ~buckets "h" v)
    [ 1.0; 1.5; 2.0; 4.0; 4.1 ];
  let h = find_hist "h" in
  Alcotest.(check (array (float 0.))) "bounds kept" buckets h.Obs.Metrics.hbounds;
  Alcotest.(check (array int)) "per-bucket counts (last is +inf)"
    [| 1; 2; 1; 1 |] h.Obs.Metrics.hcounts;
  Alcotest.(check (float 1e-9)) "sum" 12.6 h.Obs.Metrics.hsum

let test_counter_roundtrip () =
  Obs.Metrics.counter_add ~labels:[ ("kind", "h") ] "g_total" 2;
  Obs.Metrics.counter_add ~labels:[ ("kind", "h") ] "g_total" 3;
  Obs.Metrics.counter_add ~labels:[ ("kind", "cx") ] "g_total" 1;
  Alcotest.(check (option int)) "labelled counter accumulates" (Some 5)
    (Obs.Metrics.counter_value ~labels:[ ("kind", "h") ] "g_total");
  (* label order must not matter for identity *)
  Obs.Metrics.counter_add ~labels:[ ("b", "2"); ("a", "1") ] "multi" 1;
  Alcotest.(check (option int)) "labels are canonicalized" (Some 1)
    (Obs.Metrics.counter_value ~labels:[ ("a", "1"); ("b", "2") ] "multi");
  Alcotest.(check (option int)) "unknown counter reads None" None
    (Obs.Metrics.counter_value "absent")

let test_snapshot_json_shape () =
  Obs.Metrics.counter_add "c" 7;
  Obs.Metrics.gauge_set "g" 1.5;
  Obs.Metrics.observe "h" 3.0;
  let js = Obs.Metrics.snapshot_json () in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length js && (String.sub js i n = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true (has needle))
    [
      "\"schema\":\"" ^ Obs.Metrics.schema ^ "\"";
      "\"counters\":";
      "\"gauges\":";
      "\"histograms\":";
      "\"name\":\"c\"";
      "\"value\":7";
    ]

(* Counters count work items (gates, shots, MACs), never scheduling
   facts, so a characterization run must produce the bit-identical
   snapshot whatever the pool's domain count. *)
let det_program () =
  Program.make
    Circuit.(
      empty 3 |> h 0 |> cx 0 1 |> x 2 |> cx 1 2
      |> tracepoint 1 [ 0; 1 ]
      |> tracepoint 2 [ 2 ])

let snapshot_after_run domains =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  let pool = Parallel.Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      ignore
        (Morphcore.Characterize.run ~pool ~rng:(Stats.Rng.make 7)
           (det_program ()) ~count:4));
  Obs.Metrics.snapshot ()

let test_counter_determinism_across_domains () =
  let base = snapshot_after_run 1 in
  Alcotest.(check bool) "run recorded something" true (base <> []);
  List.iter
    (fun d ->
      let s = snapshot_after_run d in
      if s <> base then
        Alcotest.failf "metrics snapshot differs between 1 and %d domains" d)
    [ 2; 4 ]

(* ---------------- export golden ---------------- *)

let test_trace_jsonl_golden () =
  Obs.set_clock_for_testing (Some (tick_clock ()));
  let since = Obs.Span.mark () in
  ( Obs.Span.with_ ~name:"outer" ~attrs:[ ("k", "v"); ("n", "2") ]
    @@ fun () -> ignore (Obs.Span.with_ ~name:"in\"ner" (fun () -> ())) );
  let tid = (Domain.self () :> int) in
  let expect =
    String.concat ""
      [
        Printf.sprintf
          "{\"name\":\"outer\",\"cat\":\"morphqpv\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":%d,\"args\":{\"k\":\"v\",\"n\":\"2\"}}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"in\\\"ner\",\"cat\":\"morphqpv\",\"ph\":\"B\",\"ts\":1.000,\"pid\":1,\"tid\":%d}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"in\\\"ner\",\"cat\":\"morphqpv\",\"ph\":\"E\",\"ts\":2.000,\"pid\":1,\"tid\":%d}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"outer\",\"cat\":\"morphqpv\",\"ph\":\"E\",\"ts\":3.000,\"pid\":1,\"tid\":%d}\n"
          tid;
      ]
  in
  Alcotest.(check string) "chrome trace_event JSONL" expect
    (Obs.Export.trace_jsonl ~since ())

(* ---------------- scoped reads and mark-based reclaim ---------------- *)

let names evs = List.map (fun (ev : Obs.Span.event) -> ev.Obs.Span.name) evs

let test_span_until_and_reclaim () =
  let m0 = Obs.Span.mark () in
  Obs.Span.with_ ~name:"first" (fun () -> ());
  let m1 = Obs.Span.mark () in
  Obs.Span.with_ ~name:"second" (fun () -> ());
  let m2 = Obs.Span.mark () in
  Alcotest.(check (list string))
    "since/until brackets exactly one request" [ "first"; "first" ]
    (names (Obs.Span.events ~since:m0 ~until:m1 ()));
  Alcotest.(check (list string))
    "second window" [ "second"; "second" ]
    (names (Obs.Span.events ~since:m1 ~until:m2 ()));
  (* reclaim drops archived events, keeps the rest, preserves [dropped] *)
  Obs.Span.reclaim ~before:m1 ();
  Alcotest.(check (list string))
    "first request reclaimed" [ "second"; "second" ]
    (names (Obs.Span.events ()));
  Alcotest.(check int) "dropped preserved across reclaim" 0
    (Obs.Span.dropped ());
  Obs.Span.reclaim ~before:(Obs.Span.mark ()) ();
  Alcotest.(check (list string)) "full reclaim empties the rings" []
    (names (Obs.Span.events ()));
  (* the rings still record after a reclaim *)
  Obs.Span.with_ ~name:"third" (fun () -> ());
  Alcotest.(check (list string))
    "recording continues" [ "third"; "third" ]
    (names (Obs.Span.events ()))

(* ---------------- request context ---------------- *)

let test_context_scoping () =
  Alcotest.(check (option string)) "unset outside" None (Obs.Context.current ());
  Obs.Context.with_request "a" (fun () ->
      Alcotest.(check (option string))
        "set inside" (Some "a") (Obs.Context.current ());
      Obs.Context.with_request "b" (fun () ->
          Alcotest.(check (option string))
            "nested shadows" (Some "b") (Obs.Context.current ()));
      Alcotest.(check (option string))
        "outer restored" (Some "a") (Obs.Context.current ()));
  Alcotest.(check (option string)) "cleared after" None (Obs.Context.current ())

let test_span_request_attr () =
  let since = Obs.Span.mark () in
  Obs.Context.with_request "req-9" (fun () ->
      Obs.Span.with_ ~name:"work" ~attrs:[ ("k", "v") ] (fun () -> ()));
  match Obs.Span.events ~since () with
  | [ b; _e ] ->
      Alcotest.(check (option string))
        "span carries the request id" (Some "req-9")
        (List.assoc_opt "req" b.Obs.Span.attrs);
      Alcotest.(check (option string))
        "caller attrs preserved" (Some "v")
        (List.assoc_opt "k" b.Obs.Span.attrs)
  | evs -> Alcotest.failf "expected one span (2 events), got %d" (List.length evs)

(* ---------------- structured log ---------------- *)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let check_contains line needle =
  Alcotest.(check bool) ("line contains " ^ needle) true (contains line needle)

let with_log f () =
  Fun.protect ~finally:(fun () -> Obs.Log.configure `Off) f

let test_log_jsonl () =
  let lines = ref [] in
  Obs.Log.configure ~level:Obs.Log.Info (`Fn (fun l -> lines := l :: !lines));
  Obs.Log.emit Obs.Log.Debug "below.threshold" [];
  Obs.Log.emit Obs.Log.Info "hello"
    [
      ("n", Obs.Log.I 3);
      ("s", Obs.Log.S "a\"b\nc");
      ("f", Obs.Log.F 1.5);
      ("nan", Obs.Log.F Float.nan);
      ("b", Obs.Log.B true);
    ];
  match !lines with
  | [ line ] ->
      check_contains line "\"level\":\"info\"";
      check_contains line "\"event\":\"hello\"";
      check_contains line "\"n\":3";
      check_contains line "\"s\":\"a\\\"b\\nc\"";
      check_contains line "\"f\":1.5";
      check_contains line "\"nan\":null";
      check_contains line "\"b\":true";
      check_contains line "\"ts\":"
  | l -> Alcotest.failf "expected exactly one line, got %d" (List.length l)

let test_log_request_id () =
  let lines = ref [] in
  Obs.Log.configure ~level:Obs.Log.Debug (`Fn (fun l -> lines := l :: !lines));
  Obs.Context.with_request "req-7" (fun () ->
      Obs.Log.emit Obs.Log.Info "inside" []);
  Obs.Log.emit Obs.Log.Info "outside" [];
  match List.rev !lines with
  | [ inside; outside ] ->
      check_contains inside "\"req\":\"req-7\"";
      Alcotest.(check bool) "no req outside a request" false
        (contains outside "\"req\":")
  | l -> Alcotest.failf "expected two lines, got %d" (List.length l)

let test_log_disabled_is_noop () =
  let hits = ref 0 in
  Obs.Log.configure ~level:Obs.Log.Info (`Fn (fun _ -> incr hits));
  Obs.Log.configure `Off;
  Alcotest.(check bool) "no level enabled when off" false
    (Obs.Log.enabled Obs.Log.Error);
  Obs.Log.emit Obs.Log.Error "ghost" [];
  Alcotest.(check int) "sink never called" 0 !hits

(* ---------------- prometheus exposition ---------------- *)

let test_prometheus_exposition () =
  Obs.Metrics.counter_add ~labels:[ ("verb", "verify") ] "requests_total" 3;
  Obs.Metrics.observe ~buckets:[| 1.; 2. |] "lat" 0.5;
  Obs.Metrics.observe ~buckets:[| 1.; 2. |] "lat" 1.5;
  Obs.Metrics.observe ~buckets:[| 1.; 2. |] "lat" 9.0;
  Obs.Metrics.gauge_set "ratio" 0.25;
  let text = Obs.Export.prometheus () in
  List.iter (check_contains text)
    [
      "# TYPE morphqpv_requests_total counter\n";
      "morphqpv_requests_total{verb=\"verify\"} 3\n";
      "# TYPE morphqpv_lat histogram\n";
      (* buckets are cumulative in the exposition, per-bucket internally *)
      "morphqpv_lat_bucket{le=\"1\"} 1\n";
      "morphqpv_lat_bucket{le=\"2\"} 2\n";
      "morphqpv_lat_bucket{le=\"+Inf\"} 3\n";
      "morphqpv_lat_sum 11\n";
      "morphqpv_lat_count 3\n";
      "# TYPE morphqpv_ratio gauge\n";
      "morphqpv_ratio 0.25\n";
      (* ring saturation is synthesized at scrape time, not a registry
         counter (it is domain-distribution-dependent) *)
      "# TYPE morphqpv_obs_span_dropped_total counter\n";
      "morphqpv_obs_span_dropped_total 0\n";
    ]

(* ---------------- disabled path ---------------- *)

let test_disabled_is_noop () =
  Obs.configure ~enabled:false;
  let since = Obs.Span.mark () in
  let r = Obs.Span.with_ ~name:"ghost" (fun () -> 7) in
  Alcotest.(check int) "with_ is exactly f ()" 7 r;
  Obs.Metrics.counter_add "ghost_total" 5;
  Obs.Metrics.observe "ghost_h" 1.0;
  Obs.Metrics.gauge_set "ghost_g" 2.0;
  Alcotest.(check (list reject)) "no events buffered" []
    (List.map (fun _ -> ()) (Obs.Span.events ~since ()));
  Alcotest.(check (option int)) "no counter created" None
    (Obs.Metrics.counter_value "ghost_total");
  Alcotest.(check int) "registry untouched" 0
    (List.length (Obs.Metrics.snapshot ()))

(* ---------------- MQ017 (characterization cost lint) ---------------- *)

let test_mq017 () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> tracepoint 1 [ 0; 1 ]) in
  (match Analysis.Lint.check_cost ~estimate:(fun _ -> 2.0) ~threshold:1.0 c with
  | [ d ] ->
      Alcotest.(check string) "code" "MQ017" d.Analysis.Lint.code;
      Alcotest.(check bool) "warning severity" true
        (d.Analysis.Lint.severity = Analysis.Lint.Warning);
      Alcotest.(check (option (pair int int))) "circuit-wide" None
        d.Analysis.Lint.loc
  | ds -> Alcotest.failf "expected one MQ017, got %d diagnostics"
            (List.length ds));
  Alcotest.(check int) "under threshold is silent" 0
    (List.length
       (Analysis.Lint.check_cost ~estimate:(fun _ -> 0.5) ~threshold:1.0 c));
  (* the real estimator wired by the CLI trips on a tiny threshold *)
  let estimate c =
    Sim.Cost.hardware_seconds (Sim.Cost.estimate_characterization c)
  in
  Alcotest.(check bool) "Sim.Cost estimator integrates" true
    (Analysis.Lint.check_cost ~estimate ~threshold:1e-9 c <> []);
  Alcotest.(check bool) "MQ017 is in the code table" true
    (Analysis.Lint.severity_of_code "MQ017" = Analysis.Lint.Warning)

(* ---------------- transparency property ---------------- *)

let prop_obs_transparent =
  QCheck.Test.make ~name:"enabling obs never perturbs engine outputs"
    ~count:(max 10 (count / 2))
    (Gen.program ())
    Oracle.obs_transparent

let () =
  Config.announce ~exe:"test_obs";
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick
            (with_obs test_span_nesting);
          Alcotest.test_case "span closes on raise" `Quick
            (with_obs test_span_closes_on_raise);
          Alcotest.test_case "summary aggregates by name" `Quick
            (with_obs test_span_summary);
          Alcotest.test_case "ring bound and dropped counter" `Slow
            (with_obs test_span_ring_bound);
          Alcotest.test_case "mark-scoped reads and reclaim" `Quick
            (with_obs test_span_until_and_reclaim);
          Alcotest.test_case "request id stamped as span attr" `Quick
            (with_obs test_span_request_attr);
        ] );
      ( "context",
        [
          Alcotest.test_case "with_request scoping" `Quick test_context_scoping;
        ] );
      ( "log",
        [
          Alcotest.test_case "JSONL shape and level filtering" `Quick
            (with_log test_log_jsonl);
          Alcotest.test_case "request id injection" `Quick
            (with_log test_log_request_id);
          Alcotest.test_case "off sink never fires" `Quick
            (with_log test_log_disabled_is_noop);
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket edges" `Quick
            (with_obs test_histogram_edges);
          Alcotest.test_case "counter labels and reads" `Quick
            (with_obs test_counter_roundtrip);
          Alcotest.test_case "snapshot json shape" `Quick
            (with_obs test_snapshot_json_shape);
          Alcotest.test_case "counters identical across 1/2/4 domains" `Slow
            (with_obs test_counter_determinism_across_domains);
        ] );
      ( "export",
        [
          Alcotest.test_case "trace_event JSONL golden" `Quick
            (with_obs test_trace_jsonl_golden);
          Alcotest.test_case "prometheus exposition" `Quick
            (with_obs test_prometheus_exposition);
        ] );
      ( "disabled",
        [
          Alcotest.test_case "zero-cost path records nothing" `Quick
            (with_obs test_disabled_is_noop);
        ] );
      ("lint", [ Alcotest.test_case "MQ017 cost diagnostic" `Quick test_mq017 ]);
      ("transparency", [ qtest prop_obs_transparent ]);
    ]
