(* Observability substrate: span nesting and ordering, histogram bucket
   edges, counter determinism across pool domain counts, the Chrome
   trace_event JSONL golden, the disabled-is-noop contract, and the
   obs_transparent oracle (enabling observability never perturbs engine
   outputs). *)

open Morphcore
open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

(* Every unit test runs against a clean, enabled registry and restores
   the binary-wide default (disabled, wall clock) on the way out, so test
   order never leaks state. *)
let with_obs f () =
  Obs.configure ~enabled:true;
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock_for_testing None;
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.configure ~enabled:false)
    f

(* a deterministic clock ticking 1 microsecond per read *)
let tick_clock () =
  let t = ref (-1.) in
  fun () ->
    t := !t +. 1.;
    !t

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  let since = Obs.Span.mark () in
  let r =
    Obs.Span.with_ ~name:"outer" @@ fun () ->
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> 1));
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> 2));
    42
  in
  Alcotest.(check int) "with_ returns f's value" 42 r;
  let evs = Obs.Span.events ~since () in
  let tag (ev : Obs.Span.event) =
    (ev.name, match ev.ph with Obs.Span.B -> "B" | Obs.Span.E -> "E")
  in
  Alcotest.(check (list (pair string string)))
    "B/E bracketing order"
    [
      ("outer", "B");
      ("inner", "B");
      ("inner", "E");
      ("inner", "B");
      ("inner", "E");
      ("outer", "E");
    ]
    (List.map tag evs);
  (* seqs are the total order *)
  let seqs = List.map (fun (ev : Obs.Span.event) -> ev.seq) evs in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.sort compare seqs = seqs && List.sort_uniq compare seqs = seqs);
  (* parent links: both inner spans hang off outer; outer is a root *)
  let outer_b = List.hd evs in
  Alcotest.(check int) "outer is a root" (-1) outer_b.Obs.Span.parent;
  List.iter
    (fun (ev : Obs.Span.event) ->
      if ev.name = "inner" then
        Alcotest.(check int)
          ("inner parent (" ^ string_of_int ev.seq ^ ")")
          outer_b.Obs.Span.span ev.parent)
    evs

let test_span_closes_on_raise () =
  let since = Obs.Span.mark () in
  (try
     Obs.Span.with_ ~name:"boom" (fun () -> failwith "expected") |> ignore
   with Failure _ -> ());
  let evs = Obs.Span.events ~since () in
  Alcotest.(check int) "B and E both recorded" 2 (List.length evs);
  Alcotest.(check bool) "last is E" true
    ((List.nth evs 1).Obs.Span.ph = Obs.Span.E);
  (* the stack unwound: a sibling span opened next is again a root *)
  let r = Obs.Span.with_ ~name:"after" (fun () -> Obs.Span.events ~since ()) in
  let after_b =
    List.find (fun (ev : Obs.Span.event) -> ev.name = "after") r
  in
  Alcotest.(check int) "sibling after raise is a root" (-1)
    after_b.Obs.Span.parent

let test_span_summary () =
  Obs.set_clock_for_testing (Some (tick_clock ()));
  let since = Obs.Span.mark () in
  ( Obs.Span.with_ ~name:"outer" @@ fun () ->
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> ()));
    ignore (Obs.Span.with_ ~name:"inner" (fun () -> ())) );
  (* ticks: outer B=0, inner B=1 E=2, inner B=3 E=4, outer E=5
     -> inner total 2us over 2 runs, outer total 5us over 1 run *)
  match Obs.Span.summary ~since () with
  | [ a; b ] ->
      Alcotest.(check string) "slowest first" "outer" a.Obs.Span.name;
      Alcotest.(check int) "outer count" 1 a.Obs.Span.count;
      Alcotest.(check (float 1e-12)) "outer total" 5e-6 a.Obs.Span.total_s;
      Alcotest.(check string) "then inner" "inner" b.Obs.Span.name;
      Alcotest.(check int) "inner count" 2 b.Obs.Span.count;
      Alcotest.(check (float 1e-12)) "inner total" 2e-6 b.Obs.Span.total_s
  | rows -> Alcotest.failf "expected 2 summary rows, got %d" (List.length rows)

let test_span_ring_bound () =
  (* the ring keeps a bounded prefix and counts the overflow *)
  let before = Obs.Span.dropped () in
  for _ = 1 to 40_000 do
    Obs.Span.with_ ~name:"spin" (fun () -> ())
  done;
  Alcotest.(check bool) "overflow counted" true (Obs.Span.dropped () > before);
  Alcotest.(check int) "ring holds its capacity" 65536
    (List.length (Obs.Span.events ()));
  Obs.Span.reset ();
  Alcotest.(check int) "reset clears dropped" 0 (Obs.Span.dropped ())

(* ---------------- metrics ---------------- *)

let find_hist name =
  let entries = Obs.Metrics.snapshot () in
  match
    List.find_opt (fun (e : Obs.Metrics.entry) -> e.name = name) entries
  with
  | Some { data = Obs.Metrics.Histogram h; _ } -> h
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_histogram_edges () =
  let buckets = [| 1.; 2.; 4. |] in
  (* upper edges are inclusive: v <= edge lands in that bucket *)
  List.iter
    (fun v -> Obs.Metrics.observe ~buckets "h" v)
    [ 1.0; 1.5; 2.0; 4.0; 4.1 ];
  let h = find_hist "h" in
  Alcotest.(check (array (float 0.))) "bounds kept" buckets h.Obs.Metrics.hbounds;
  Alcotest.(check (array int)) "per-bucket counts (last is +inf)"
    [| 1; 2; 1; 1 |] h.Obs.Metrics.hcounts;
  Alcotest.(check (float 1e-9)) "sum" 12.6 h.Obs.Metrics.hsum

let test_counter_roundtrip () =
  Obs.Metrics.counter_add ~labels:[ ("kind", "h") ] "g_total" 2;
  Obs.Metrics.counter_add ~labels:[ ("kind", "h") ] "g_total" 3;
  Obs.Metrics.counter_add ~labels:[ ("kind", "cx") ] "g_total" 1;
  Alcotest.(check (option int)) "labelled counter accumulates" (Some 5)
    (Obs.Metrics.counter_value ~labels:[ ("kind", "h") ] "g_total");
  (* label order must not matter for identity *)
  Obs.Metrics.counter_add ~labels:[ ("b", "2"); ("a", "1") ] "multi" 1;
  Alcotest.(check (option int)) "labels are canonicalized" (Some 1)
    (Obs.Metrics.counter_value ~labels:[ ("a", "1"); ("b", "2") ] "multi");
  Alcotest.(check (option int)) "unknown counter reads None" None
    (Obs.Metrics.counter_value "absent")

let test_snapshot_json_shape () =
  Obs.Metrics.counter_add "c" 7;
  Obs.Metrics.gauge_set "g" 1.5;
  Obs.Metrics.observe "h" 3.0;
  let js = Obs.Metrics.snapshot_json () in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length js && (String.sub js i n = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true (has needle))
    [
      "\"schema\":\"" ^ Obs.Metrics.schema ^ "\"";
      "\"counters\":";
      "\"gauges\":";
      "\"histograms\":";
      "\"name\":\"c\"";
      "\"value\":7";
    ]

(* Counters count work items (gates, shots, MACs), never scheduling
   facts, so a characterization run must produce the bit-identical
   snapshot whatever the pool's domain count. *)
let det_program () =
  Program.make
    Circuit.(
      empty 3 |> h 0 |> cx 0 1 |> x 2 |> cx 1 2
      |> tracepoint 1 [ 0; 1 ]
      |> tracepoint 2 [ 2 ])

let snapshot_after_run domains =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  let pool = Parallel.Pool.create ~domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      ignore
        (Morphcore.Characterize.run ~pool ~rng:(Stats.Rng.make 7)
           (det_program ()) ~count:4));
  Obs.Metrics.snapshot ()

let test_counter_determinism_across_domains () =
  let base = snapshot_after_run 1 in
  Alcotest.(check bool) "run recorded something" true (base <> []);
  List.iter
    (fun d ->
      let s = snapshot_after_run d in
      if s <> base then
        Alcotest.failf "metrics snapshot differs between 1 and %d domains" d)
    [ 2; 4 ]

(* ---------------- export golden ---------------- *)

let test_trace_jsonl_golden () =
  Obs.set_clock_for_testing (Some (tick_clock ()));
  let since = Obs.Span.mark () in
  ( Obs.Span.with_ ~name:"outer" ~attrs:[ ("k", "v"); ("n", "2") ]
    @@ fun () -> ignore (Obs.Span.with_ ~name:"in\"ner" (fun () -> ())) );
  let tid = (Domain.self () :> int) in
  let expect =
    String.concat ""
      [
        Printf.sprintf
          "{\"name\":\"outer\",\"cat\":\"morphqpv\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":%d,\"args\":{\"k\":\"v\",\"n\":\"2\"}}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"in\\\"ner\",\"cat\":\"morphqpv\",\"ph\":\"B\",\"ts\":1.000,\"pid\":1,\"tid\":%d}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"in\\\"ner\",\"cat\":\"morphqpv\",\"ph\":\"E\",\"ts\":2.000,\"pid\":1,\"tid\":%d}\n"
          tid;
        Printf.sprintf
          "{\"name\":\"outer\",\"cat\":\"morphqpv\",\"ph\":\"E\",\"ts\":3.000,\"pid\":1,\"tid\":%d}\n"
          tid;
      ]
  in
  Alcotest.(check string) "chrome trace_event JSONL" expect
    (Obs.Export.trace_jsonl ~since ())

(* ---------------- disabled path ---------------- *)

let test_disabled_is_noop () =
  Obs.configure ~enabled:false;
  let since = Obs.Span.mark () in
  let r = Obs.Span.with_ ~name:"ghost" (fun () -> 7) in
  Alcotest.(check int) "with_ is exactly f ()" 7 r;
  Obs.Metrics.counter_add "ghost_total" 5;
  Obs.Metrics.observe "ghost_h" 1.0;
  Obs.Metrics.gauge_set "ghost_g" 2.0;
  Alcotest.(check (list reject)) "no events buffered" []
    (List.map (fun _ -> ()) (Obs.Span.events ~since ()));
  Alcotest.(check (option int)) "no counter created" None
    (Obs.Metrics.counter_value "ghost_total");
  Alcotest.(check int) "registry untouched" 0
    (List.length (Obs.Metrics.snapshot ()))

(* ---------------- MQ017 (characterization cost lint) ---------------- *)

let test_mq017 () =
  let c = Circuit.(empty 2 |> h 0 |> cx 0 1 |> tracepoint 1 [ 0; 1 ]) in
  (match Analysis.Lint.check_cost ~estimate:(fun _ -> 2.0) ~threshold:1.0 c with
  | [ d ] ->
      Alcotest.(check string) "code" "MQ017" d.Analysis.Lint.code;
      Alcotest.(check bool) "warning severity" true
        (d.Analysis.Lint.severity = Analysis.Lint.Warning);
      Alcotest.(check (option (pair int int))) "circuit-wide" None
        d.Analysis.Lint.loc
  | ds -> Alcotest.failf "expected one MQ017, got %d diagnostics"
            (List.length ds));
  Alcotest.(check int) "under threshold is silent" 0
    (List.length
       (Analysis.Lint.check_cost ~estimate:(fun _ -> 0.5) ~threshold:1.0 c));
  (* the real estimator wired by the CLI trips on a tiny threshold *)
  let estimate c =
    Sim.Cost.hardware_seconds (Sim.Cost.estimate_characterization c)
  in
  Alcotest.(check bool) "Sim.Cost estimator integrates" true
    (Analysis.Lint.check_cost ~estimate ~threshold:1e-9 c <> []);
  Alcotest.(check bool) "MQ017 is in the code table" true
    (Analysis.Lint.severity_of_code "MQ017" = Analysis.Lint.Warning)

(* ---------------- transparency property ---------------- *)

let prop_obs_transparent =
  QCheck.Test.make ~name:"enabling obs never perturbs engine outputs"
    ~count:(max 10 (count / 2))
    (Gen.program ())
    Oracle.obs_transparent

let () =
  Config.announce ~exe:"test_obs";
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick
            (with_obs test_span_nesting);
          Alcotest.test_case "span closes on raise" `Quick
            (with_obs test_span_closes_on_raise);
          Alcotest.test_case "summary aggregates by name" `Quick
            (with_obs test_span_summary);
          Alcotest.test_case "ring bound and dropped counter" `Slow
            (with_obs test_span_ring_bound);
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket edges" `Quick
            (with_obs test_histogram_edges);
          Alcotest.test_case "counter labels and reads" `Quick
            (with_obs test_counter_roundtrip);
          Alcotest.test_case "snapshot json shape" `Quick
            (with_obs test_snapshot_json_shape);
          Alcotest.test_case "counters identical across 1/2/4 domains" `Slow
            (with_obs test_counter_determinism_across_domains);
        ] );
      ( "export",
        [
          Alcotest.test_case "trace_event JSONL golden" `Quick
            (with_obs test_trace_jsonl_golden);
        ] );
      ( "disabled",
        [
          Alcotest.test_case "zero-cost path records nothing" `Quick
            (with_obs test_disabled_is_noop);
        ] );
      ("lint", [ Alcotest.test_case "MQ017 cost diagnostic" `Quick test_mq017 ]);
      ("transparency", [ qtest prop_obs_transparent ]);
    ]
