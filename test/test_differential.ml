(* Cross-engine differential & metamorphic harness (see DESIGN.md §8).

   Every property runs [Testkit.Config.count ()] random circuits (default
   100, lowered by QCHECK_COUNT for `make test-fast`) from the generator
   seed [Testkit.Config.seed ()] — a failure prints the shrunk circuit as
   mini-QASM plus the one-line repro command. *)

open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

(* ---------------- differential oracles ---------------- *)

let oracle_statevec_vs_dm =
  QCheck.Test.make ~name:"statevec ~ dm_engine (pure)" ~count
    (Gen.pure ())
    Oracle.statevec_vs_dm

let oracle_statevec_vs_tableau =
  QCheck.Test.make ~name:"statevec ~ tableau (clifford)" ~count
    (Gen.clifford ())
    Oracle.statevec_vs_tableau

let oracle_statevec_vs_sparse =
  QCheck.Test.make ~name:"statevec ~ sparse_sim (pure, basis inputs)" ~count
    (QCheck.pair (Gen.pure ()) (QCheck.make (QCheck.Gen.int_bound 15)))
    (fun (c, input) -> Oracle.statevec_vs_sparse ~input c)

let oracle_qasm_roundtrip =
  QCheck.Test.make ~name:"qasm parse . print = id (programs)" ~count
    (Gen.program ())
    Oracle.qasm_roundtrip

(* check_counts samples thousands of shots per case: fewer circuits *)
let oracle_sequential_vs_fixed =
  QCheck.Test.make ~name:"sequential budget reproduces fixed verdict"
    ~count:(max 10 (count / 5))
    (Gen.pure ())
    Oracle.sequential_vs_fixed_verdict

let oracle_pvalue_uniform =
  QCheck.Test.make ~name:"p-values uniform under the null"
    ~count:(max 10 (count / 5))
    (Gen.pure ())
    Oracle.pvalue_uniform_under_null

let oracle_transpile_passes =
  List.map
    (fun (name, pass) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "transpile %s preserves unitary" name)
        ~count (Gen.pure ())
        (Oracle.transpile_preserves pass))
    Oracle.all_passes

(* certificate checking runs the full pass + independent-checker pipeline
   per circuit: near-Clifford circuits exercise the Clifford-direct
   routing, programs exercise measurement/feedback fences and pruning *)
let oracle_certified_passes =
  [
    QCheck.Test.make ~name:"certified passes sound (pure)" ~count
      (Gen.pure ()) Oracle.certified_pass_sound;
    QCheck.Test.make ~name:"certified passes sound (near-clifford)" ~count
      (Gen.near_clifford ()) Oracle.certified_pass_sound;
    QCheck.Test.make ~name:"certified passes sound (programs)" ~count
      (Gen.program ()) Oracle.certified_pass_sound;
  ]

(* ---------------- metamorphic properties ---------------- *)

let meta_adjoint =
  QCheck.Test.make ~name:"G; adjoint G = identity" ~count (Gen.pure ())
    Metamorph.adjoint_cancels

let meta_global_phase =
  QCheck.Test.make ~name:"global phase invariance (z x z x = -I)" ~count
    (Gen.pure ())
    Metamorph.global_phase_invariant

let meta_confidence =
  QCheck.Test.make ~name:"Theorem-3 confidence monotone in samples" ~count
    QCheck.(
      pair (int_range 1 8) (list_of_size Gen.(int_range 2 6) (int_bound 5000)))
    (fun (n_in, samples) -> Metamorph.confidence_monotone ~n_in ~samples)

let meta_fused_traces =
  QCheck.Test.make ~name:"tracepoints invariant under fuse_1q" ~count
    (Gen.pure ())
    Metamorph.fused_traces_agree

let meta_domain_invariance =
  (* trajectory averaging is the expensive path: fewer, smaller cases *)
  QCheck.Test.make ~name:"tracepoints invariant under domain count"
    ~count:(max 10 (count / 5))
    (QCheck.pair (Gen.program ~max_qubits:3 ()) Gen.noise)
    (fun (c, noise) ->
      Metamorph.traces_domain_invariant ~noise ~trajectories:12
        ~domains:[ 1; 2; 4 ] c)

(* ---------------- shrinking smoke check ----------------

   Break a pass on purpose (rewrite every s into sdg — NOT unitary-
   preserving on its own) and demand that QCheck's shrinker walks the
   failure down to the minimal counterexample: a single uncontrolled s
   gate on a 1-qubit register. Guards the shrinker itself against
   regressions. *)

let s_to_sdg =
  Circuit.map_gates (fun g ->
      Some
        (if g.Circuit.Gate.name = "s" && g.Circuit.Gate.controls = [] then
           Circuit.Gate.make "sdg" g.Circuit.Gate.targets
         else g))

let test_shrinking_minimizes () =
  let cell =
    QCheck.Test.make_cell ~name:"deliberately broken pass" ~count:500
      (Gen.clifford ())
      (Oracle.transpile_preserves s_to_sdg)
  in
  let result = QCheck.Test.check_cell ~rand:(Config.rand ()) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = { instance; shrink_steps; _ } :: _ }
    ->
      let c = Gen.build instance in
      if shrink_steps = 0 then
        Alcotest.fail "counterexample was reported without any shrinking";
      Alcotest.(check int) "shrunk to a single gate" 1 (Circuit.gate_count c);
      Alcotest.(check int) "shrunk to one qubit" 1 (Circuit.num_qubits c);
      let g =
        match Circuit.instrs c with
        | [ Circuit.Instr.Gate g ] -> g
        | _ -> Alcotest.fail "expected exactly one gate instruction"
      in
      Alcotest.(check string) "minimal gate is s" "s" g.Circuit.Gate.name;
      Alcotest.(check (list int)) "uncontrolled" [] g.Circuit.Gate.controls
  | _ ->
      Alcotest.fail
        "broken pass was not caught by the differential oracle at all"

(* ---------------- shrunk-trace regression circuits ----------------

   The three smallest shrunk traces observed while developing the harness,
   pinned as fixed unit tests (satellite task): a lone S (phase-gate sign
   conventions), the Bell pair (entangling + canonicalized cx), and the
   H-T-H sandwich (non-Clifford interference). *)

let regression name circ all =
  ( Printf.sprintf "regression: %s" name,
    `Quick,
    fun () ->
      List.iter
        (fun (oracle_name, ok) ->
          if not (ok circ) then
            Alcotest.failf "%s disagrees on %s:\n%s" oracle_name name
              (Gen.print_circ circ))
        all )

let pure_oracles =
  [
    ("statevec~dm", Oracle.statevec_vs_dm);
    ("statevec~sparse", fun c -> Oracle.statevec_vs_sparse c);
    ("qasm roundtrip", Oracle.qasm_roundtrip);
    ("adjoint cancels", Metamorph.adjoint_cancels);
    ("global phase", Metamorph.global_phase_invariant);
    ("fused traces", Metamorph.fused_traces_agree);
  ]
  @ List.map
      (fun (n, p) ->
        ("transpile " ^ n, fun c -> Oracle.transpile_preserves p c))
      Oracle.all_passes

let clifford_oracles = ("statevec~tableau", Oracle.statevec_vs_tableau) :: pure_oracles

let lone_s = Gen.{ qubits = 1; specs = [ One ("s", [], 0) ] }

let bell =
  Gen.{ qubits = 2; specs = [ One ("h", [], 0); Ctl ("x", [], 0, 1) ] }

let hth =
  Gen.
    {
      qubits = 1;
      specs = [ One ("h", [], 0); One ("t", [], 0); One ("h", [], 0) ];
    }

(* The exact circuit the harness shrank to when it first ran: exposed the
   controlled-sx inverse bug (Gate.inverse returned rx(-pi/2), off by a
   phase that turns relative under a control). *)
let controlled_sx =
  Gen.
    {
      qubits = 2;
      specs =
        [
          One ("u3", [ 0.00649761385448; 0.0; 0.0 ], 0);
          Swap (0, 1);
          Ctl ("sx", [], 1, 0);
          Trace [ 0 ];
        ];
    }

let () =
  Config.announce ~exe:"test/test_differential.exe";
  Alcotest.run "differential"
    [
      ( "oracles",
        List.map qtest
          ([
             oracle_statevec_vs_dm;
             oracle_statevec_vs_tableau;
             oracle_statevec_vs_sparse;
             oracle_qasm_roundtrip;
             oracle_sequential_vs_fixed;
             oracle_pvalue_uniform;
           ]
          @ oracle_transpile_passes @ oracle_certified_passes) );
      ( "metamorphic",
        List.map qtest
          [
            meta_adjoint;
            meta_global_phase;
            meta_confidence;
            meta_fused_traces;
            meta_domain_invariance;
          ] );
      ("shrinking", [ ("broken pass shrinks to minimal circuit", `Quick, test_shrinking_minimizes) ]);
      ( "regressions",
        [
          regression "lone s gate" lone_s clifford_oracles;
          regression "bell pair" bell clifford_oracles;
          regression "h-t-h sandwich" hth pure_oracles;
          regression "controlled-sx adjoint (shrunk bug)" controlled_sx
            pure_oracles;
        ] );
    ]
