let parse_ok src = Qasm.parse src

let test_parse_paper_lock () =
  (* the listing from Section 7.1 of the paper *)
  let src =
    {|
qreg q[5];
T 1 q[2,3,4]; // add tracepoint T1 on qubits 2,3,4
h q[1];
x q[2,3,4];
mcz q[1,2,3],q[4];
x q[2,3,4];
h q[1];
T 2 q[1]; // add tracepoint T2 on qubit 1
|}
  in
  let c = parse_ok src in
  Alcotest.(check int) "qubits" 5 (Circuit.num_qubits c);
  (* h + 3x + mcz + 3x + h = 9 gates *)
  Alcotest.(check int) "gates" 9 (Circuit.gate_count c);
  Alcotest.(check (list (pair int (list int))))
    "tracepoints"
    [ (1, [ 2; 3; 4 ]); (2, [ 1 ]) ]
    (Circuit.tracepoints c)

let test_parse_ghz () =
  let src = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nT 1 q[0,1,2];\n" in
  let c = parse_ok src in
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let expected = Benchmarks.Ghz.state 3 in
  if Qstate.Statevec.fidelity_pure st expected < 1. -. 1e-9 then
    Alcotest.fail "GHZ state mismatch"

let test_parse_params () =
  let c = parse_ok "qreg q[1];\nrz(pi/2) q[0];\nu3(0.1, -0.2, pi) q[0];\np(2*pi - 1.5) q[0];\n" in
  Alcotest.(check int) "gates" 3 (Circuit.gate_count c)

let test_parse_measure_feedback () =
  let src =
    "qreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\nif (c[0]==1) x q[1];\n"
  in
  let c = parse_ok src in
  Alcotest.(check int) "clbits" 2 (Circuit.num_clbits c);
  (* q1 must equal the measured bit *)
  let rng = Stats.Rng.make 3 in
  for _ = 1 to 20 do
    let o = Sim.Engine.run ~rng c in
    let p1 = Qstate.Statevec.prob1 o.Sim.Engine.state 1 in
    Alcotest.(check int)
      "feedback applied" o.Sim.Engine.clbits.(0)
      (int_of_float (Float.round p1))
  done

let test_parse_whole_register_condition () =
  let src = "qreg q[1];\ncreg c[2];\nmeasure q[0] -> c[0];\nif (c==0) x q[0];\n" in
  let c = parse_ok src in
  (* |0> measured 0, then flipped to |1> *)
  let o = Sim.Engine.run c in
  Alcotest.(check int) "flipped" 1
    (int_of_float (Float.round (Qstate.Statevec.prob1 o.Sim.Engine.state 0)))

let test_parse_reset_barrier () =
  let c = parse_ok "qreg q[2];\nx q[0];\nbarrier q[0,1];\nreset q[0];\n" in
  let o = Sim.Engine.run c in
  Alcotest.(check int) "reset to zero" 0
    (int_of_float (Float.round (Qstate.Statevec.prob1 o.Sim.Engine.state 0)))

let test_parse_errors () =
  let expect_fail src =
    match Qasm.parse src with
    | exception Qasm.Parse_error _ -> ()
    | exception Circuit.Error { loc = Some _; _ } ->
        (* semantic validation errors carry a source location *)
        ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_fail "h q[0];";
  (* no qreg *)
  expect_fail "qreg q[2]; h q[9];";
  (* out of range (raised as located Circuit.Error, code MQ001) *)
  expect_fail "qreg q[2]; banana q[0];";
  expect_fail "qreg q[2]; h q[0]"
(* missing semicolon *)

let test_parse_error_columns () =
  (match Qasm.parse "qreg q[2];\nh q[0]; =\n" with
  | exception Qasm.Parse_error { line; column; token; _ } ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check int) "column" 9 column;
      Alcotest.(check string) "token" "=" token
  | _ -> Alcotest.fail "expected parse error");
  match Qasm.parse "qreg q[2];\n  h q[5];\n" with
  | exception Circuit.Error { code; loc; _ } ->
      Alcotest.(check string) "code" "MQ001" code;
      Alcotest.(check (option (pair int int))) "loc" (Some (2, 3)) loc
  | _ -> Alcotest.fail "expected range error"

let test_parse_with_locs () =
  let c, locs =
    Qasm.parse_with_locs "qreg q[2];\ncreg c[1];\nh q[0,1];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n"
  in
  Alcotest.(check int) "instrs" (List.length (Circuit.instrs c)) (Array.length locs);
  (* h broadcast over two indices: both gates share the statement's loc *)
  Alcotest.(check (array (pair int int)))
    "locs"
    [| (3, 1); (3, 1); (4, 1); (5, 1) |]
    locs

let test_roundtrip_benchmarks () =
  List.iter
    (fun c ->
      let printed = Qasm.to_string c in
      let reparsed = Qasm.parse printed in
      Alcotest.(check int)
        "gate count survives" (Circuit.gate_count c)
        (Circuit.gate_count reparsed);
      (* semantics survive for unitary circuits *)
      if Sim.Engine.is_deterministic c then begin
        let u1 = Sim.Engine.unitary c and u2 = Sim.Engine.unitary reparsed in
        if not (Linalg.Cmat.equal ~eps:1e-9 u1 u2) then
          Alcotest.fail "unitary changed by roundtrip"
      end)
    [
      Benchmarks.Ghz.circuit 3;
      (Benchmarks.Quantum_lock.make ~key:2 3).Benchmarks.Quantum_lock.circuit;
      Benchmarks.Qft.circuit 3;
      Benchmarks.Shor_period.for_order ~counting:3 ~a:2 ~n_mod:5;
    ]

let test_roundtrip_teleport () =
  (* feedback + measurement survive the roundtrip *)
  let c = Benchmarks.Teleport.single () in
  let reparsed = Qasm.parse (Qasm.to_string c) in
  Alcotest.(check int) "clbits" (Circuit.num_clbits c) (Circuit.num_clbits reparsed);
  let rng = Stats.Rng.make 9 in
  (* teleport |1>: output qubit must read 1 *)
  let initial = Qstate.Statevec.basis 3 1 in
  for _ = 1 to 10 do
    let o = Sim.Engine.run ~rng ~initial reparsed in
    Alcotest.(check int) "teleported" 1
      (int_of_float (Float.round (Qstate.Statevec.prob1 o.Sim.Engine.state 2)))
  done

(* ---------------- user gate definitions ---------------- *)

let test_gate_definition_bell () =
  let src =
    {|
qreg q[2];
gate bell a, b { h a; cx a, b; }
bell q[0], q[1];
|}
  in
  let c = parse_ok src in
  Alcotest.(check int) "expanded gates" 2 (Circuit.gate_count c);
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let expect = Circuit.(empty 2 |> h 0 |> cx 0 1) in
  let st2 = (Sim.Engine.run expect).Sim.Engine.state in
  if Qstate.Statevec.fidelity_pure st st2 < 1. -. 1e-12 then
    Alcotest.fail "bell definition wrong"

let test_gate_definition_parameterized () =
  let src =
    {|
qreg q[1];
gate tilt(theta) a { ry(theta/2) a; rz(theta*2) a; }
tilt(0.8) q[0];
|}
  in
  let c = parse_ok src in
  let expect = Circuit.(empty 1 |> ry 0.4 0 |> rz 1.6 0) in
  let u1 = Sim.Engine.unitary c and u2 = Sim.Engine.unitary expect in
  if not (Linalg.Cmat.equal ~eps:1e-12 u1 u2) then
    Alcotest.fail "parameterized definition wrong"

let test_gate_definition_nested () =
  let src =
    {|
qreg q[3];
gate bell a, b { h a; cx a, b; }
gate chain a, b, c { bell a, b; cx b, c; }
chain q[0], q[1], q[2];
|}
  in
  let c = parse_ok src in
  Alcotest.(check int) "nested expansion" 3 (Circuit.gate_count c);
  let st = (Sim.Engine.run c).Sim.Engine.state in
  let ghz = Benchmarks.Ghz.state 3 in
  if Qstate.Statevec.fidelity_pure st ghz < 1. -. 1e-12 then
    Alcotest.fail "nested definition wrong"

let test_gate_definition_errors () =
  let expect_fail src =
    match Qasm.parse src with
    | exception Qasm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  (* wrong arity *)
  expect_fail "qreg q[2]; gate g a, b { cx a, b; } g q[0];";
  (* wrong parameter count *)
  expect_fail "qreg q[1]; gate g(t) a { rz(t) a; } g q[0];";
  (* redefinition *)
  expect_fail "qreg q[1]; gate g a { x a; } gate g a { z a; } g q[0];";
  (* unknown qubit argument inside the body *)
  expect_fail "qreg q[1]; gate g a { x b; } g q[0];"

let test_parse_error_line_numbers () =
  (* unknown gate: now a located Circuit.Error (MQ015) from Gate.make *)
  (match Qasm.parse "qreg q[1];\nh q[0];\nbanana q[0];\n" with
  | exception Circuit.Error { code; loc = Some (line, _); _ } ->
      Alcotest.(check string) "code" "MQ015" code;
      Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected parse error");
  (* syntax errors still raise Parse_error with the right line *)
  match Qasm.parse "qreg q[1];\nh q[0];\nh q[0] oops;\n" with
  | exception Qasm.Parse_error { line; _ } ->
      Alcotest.(check int) "line" 3 line
  | _ -> Alcotest.fail "expected parse error"

let prop_roundtrip_random_circuits =
  QCheck.Test.make ~name:"print/parse roundtrip preserves unitaries" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let r = Stats.Rng.make seed in
      let n = 1 + Stats.Rng.int r 3 in
      let c = ref (Circuit.empty n) in
      for _ = 1 to 12 do
        match Stats.Rng.int r 7 with
        | 0 -> c := Circuit.h (Stats.Rng.int r n) !c
        | 1 -> c := Circuit.t_gate (Stats.Rng.int r n) !c
        | 2 -> c := Circuit.rz (Stats.Rng.uniform r (-3.) 3.) (Stats.Rng.int r n) !c
        | 3 -> c := Circuit.u3 (Stats.Rng.uniform r 0. 3.) (Stats.Rng.uniform r 0. 3.) (Stats.Rng.uniform r 0. 3.) (Stats.Rng.int r n) !c
        | 4 -> c := Circuit.sdg (Stats.Rng.int r n) !c
        | 5 ->
            if n >= 2 then begin
              let a = Stats.Rng.int r n in
              c := Circuit.cp (Stats.Rng.uniform r 0. 3.) a ((a + 1) mod n) !c
            end
        | _ ->
            if n >= 2 then begin
              let a = Stats.Rng.int r n in
              c := Circuit.cx a ((a + 1) mod n) !c
            end
      done;
      let reparsed = Qasm.parse (Qasm.to_string !c) in
      Linalg.Cmat.equal ~eps:1e-9 (Sim.Engine.unitary !c) (Sim.Engine.unitary reparsed))

let () =
  Alcotest.run "qasm"
    [
      ( "parse",
        [
          Alcotest.test_case "paper lock listing" `Quick test_parse_paper_lock;
          Alcotest.test_case "ghz semantics" `Quick test_parse_ghz;
          Alcotest.test_case "parameter expressions" `Quick test_parse_params;
          Alcotest.test_case "measure + feedback" `Quick test_parse_measure_feedback;
          Alcotest.test_case "whole-register condition" `Quick test_parse_whole_register_condition;
          Alcotest.test_case "reset + barrier" `Quick test_parse_reset_barrier;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error line numbers" `Quick test_parse_error_line_numbers;
          Alcotest.test_case "error columns" `Quick test_parse_error_columns;
          Alcotest.test_case "instruction locs" `Quick test_parse_with_locs;
          Alcotest.test_case "gate definition" `Quick test_gate_definition_bell;
          Alcotest.test_case "parameterized definition" `Quick test_gate_definition_parameterized;
          Alcotest.test_case "nested definition" `Quick test_gate_definition_nested;
          Alcotest.test_case "definition errors" `Quick test_gate_definition_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "benchmarks" `Quick test_roundtrip_benchmarks;
          Alcotest.test_case "teleport" `Quick test_roundtrip_teleport;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random_circuits ] );
    ]
