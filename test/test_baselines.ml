open Morphcore

let rng () = Stats.Rng.make 606

let ghz_program () = Program.make (Benchmarks.Ghz.circuit 3)

let mutated_ghz_bitflip () =
  (* insert an X mid-circuit: probability-visible *)
  let c = Circuit.(empty 3 |> h 0 |> x 1 |> cx 0 1 |> cx 1 2 |> tracepoint 1 [ 0; 1; 2 ]) in
  Program.make c

let mutated_ghz_phase () =
  (* phase error at the end: invisible in probabilities *)
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2 |> z 2 |> tracepoint 1 [ 0; 1; 2 ]) in
  Program.make c

(* ---------------- Verifier helpers ---------------- *)

let test_basis_inputs_distinct () =
  let inputs = Baselines.Verifier.basis_inputs (rng ()) ~k:3 ~count:8 in
  Alcotest.(check int) "all of them" 8 (List.length (List.sort_uniq compare inputs))

let test_basis_inputs_capped () =
  let inputs = Baselines.Verifier.basis_inputs (rng ()) ~k:2 ~count:100 in
  Alcotest.(check int) "capped at 4" 4 (List.length inputs)

(* ---------------- Quito ---------------- *)

let test_quito_finds_bitflip () =
  let r = Baselines.Quito.check ~rng:(rng ()) ~tests:4 ~reference:(ghz_program ())
      ~candidate:(mutated_ghz_bitflip ()) ()
  in
  assert r.Baselines.Verifier.bug_found

let test_quito_misses_phase () =
  let r = Baselines.Quito.check ~rng:(rng ()) ~tests:8 ~reference:(ghz_program ())
      ~candidate:(mutated_ghz_phase ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_quito_clean_program () =
  let r = Baselines.Quito.check ~rng:(rng ()) ~tests:4 ~reference:(ghz_program ())
      ~candidate:(ghz_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found);
  Alcotest.(check int) "used all tests" 4 r.Baselines.Verifier.tests_used

let test_quito_executions_to_find_lock () =
  (* grid search must scan until it stumbles on the unexpected key *)
  let lock = Benchmarks.Quantum_lock.make ~key:1 ~unexpected_key:6 3 in
  let clean = Benchmarks.Quantum_lock.make ~key:1 3 in
  let to_prog l =
    Program.make ~input_qubits:l.Benchmarks.Quantum_lock.key_qubits
      l.Benchmarks.Quantum_lock.circuit
  in
  match
    Baselines.Quito.executions_to_find ~rng:(rng ()) ~reference:(to_prog clean)
      ~candidate:(to_prog lock) ()
  with
  | Some n -> assert (n >= 1 && n <= 8)
  | None -> Alcotest.fail "quito should eventually hit the bad key"

(* ---------------- NDD ---------------- *)

let test_ndd_finds_phase () =
  let r = Baselines.Ndd.check ~rng:(rng ()) ~tests:4 ~kind:Baselines.Ndd.General ~tracepoint:1
      ~reference:(ghz_program ()) ~candidate:(mutated_ghz_phase ()) ()
  in
  assert r.Baselines.Verifier.bug_found

let test_ndd_clean () =
  let r = Baselines.Ndd.check ~rng:(rng ()) ~tests:4 ~kind:Baselines.Ndd.General ~tracepoint:1
      ~reference:(ghz_program ()) ~candidate:(ghz_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_ndd_cost_model () =
  Alcotest.(check int) "classical cheap" 2
    (Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.Classical ~n_t:5);
  Alcotest.(check int) "general 2q" (18 * 16)
    (Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.General ~n_t:2);
  (* exponential growth *)
  assert (
    Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.General ~n_t:9
    > 100 * Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.General ~n_t:5)

let test_ndd_overhead_recorded () =
  let r = Baselines.Ndd.check ~rng:(rng ()) ~shots:10 ~tests:2 ~kind:Baselines.Ndd.General
      ~tracepoint:1 ~reference:(ghz_program ()) ~candidate:(ghz_program ()) ()
  in
  assert (r.Baselines.Verifier.cost.Sim.Cost.gate_ops > 2 * 10 * 3)

(* ---------------- Stat ---------------- *)

let test_stat_chi_square_detects_shift () =
  let expected = [| 0.5; 0.5 |] in
  let ok = Baselines.Stat_assert.chi_square ~expected ~counts:[ (0, 510); (1, 490) ] ~shots:1000 in
  let bad = Baselines.Stat_assert.chi_square ~expected ~counts:[ (0, 900); (1, 100) ] ~shots:1000 in
  assert (ok < 3.84);
  assert (bad > 100.)

let test_stat_check_holds () =
  let prog = Program.make Circuit.(empty 1 |> h 0) in
  let holds, _ =
    Baselines.Stat_assert.check ~rng:(rng ()) ~expected:[| 0.5; 0.5 |] prog ~input:0 ()
  in
  assert holds

let test_stat_check_fails () =
  let prog = Program.make Circuit.(empty 1 |> x 0) in
  let holds, result =
    Baselines.Stat_assert.check ~rng:(rng ()) ~expected:[| 1.; 0. |] prog ~input:0 ()
  in
  (* program flips the qubit; expectation says it should stay 0 *)
  assert (not holds);
  assert result.Baselines.Verifier.bug_found

(* ---------------- Sparse sim ---------------- *)

let test_sparse_matches_dense () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> t_gate 1 |> cx 1 2 |> s 2) in
  let sparse = Baselines.Sparse_sim.run c ~input:0 in
  let dense = (Sim.Engine.run c).Sim.Engine.state in
  let densified = Baselines.Sparse_sim.to_statevec sparse in
  if Qstate.Statevec.fidelity_pure densified dense < 1. -. 1e-9 then
    Alcotest.fail "sparse disagrees with dense"

let test_sparse_support_growth () =
  let c = Circuit.(empty 4 |> h 0 |> h 1 |> h 2 |> h 3) in
  let s = Baselines.Sparse_sim.run c ~input:0 in
  Alcotest.(check int) "full support" 16 (Baselines.Sparse_sim.support s);
  let c2 = Circuit.(empty 4 |> x 0 |> cx 0 1) in
  Alcotest.(check int) "basis stays sparse" 1 (Baselines.Sparse_sim.support (Baselines.Sparse_sim.run c2 ~input:0))

let test_sparse_equal_global_phase () =
  let a = Baselines.Sparse_sim.run Circuit.(empty 1 |> x 0 |> z 0) ~input:0 in
  let b = Baselines.Sparse_sim.run Circuit.(empty 1 |> x 0) ~input:0 in
  (* differ only by global phase -1 *)
  assert (Baselines.Sparse_sim.equal a b)

let test_sparse_detects_relative_phase () =
  let a = Baselines.Sparse_sim.run Circuit.(empty 1 |> h 0 |> z 0) ~input:0 in
  let b = Baselines.Sparse_sim.run Circuit.(empty 1 |> h 0) ~input:0 in
  assert (not (Baselines.Sparse_sim.equal a b))

(* ---------------- Automa ---------------- *)

let test_automa_finds_phase () =
  let r = Baselines.Automa.check ~rng:(rng ()) ~tests:2 ~reference:(ghz_program ())
      ~candidate:(mutated_ghz_phase ()) ()
  in
  assert r.Baselines.Verifier.bug_found

let test_automa_clean () =
  let r = Baselines.Automa.check ~rng:(rng ()) ~tests:2 ~reference:(ghz_program ())
      ~candidate:(ghz_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_automa_supports () =
  assert (Baselines.Automa.supports (ghz_program ()));
  let qnn = Benchmarks.Qnn.init (rng ()) ~num_qubits:3 ~layers:1 in
  let qnn_prog = Program.make (Benchmarks.Qnn.body qnn) in
  assert (not (Baselines.Automa.supports qnn_prog));
  assert (not (Baselines.Automa.supports (Program.make (Benchmarks.Teleport.single ()))))

(* ---------------- edge cases: degenerate sizes and budgets ----------- *)

let empty_program () = Program.make (Circuit.empty 2)

let test_stat_zero_shots_holds () =
  (* 0 shots = no evidence: the chi-square statistic degenerates to 0, so
     the assertion must HOLD rather than crash or spuriously fail *)
  let prog = Program.make Circuit.(empty 1 |> h 0) in
  let holds, result =
    Baselines.Stat_assert.check ~rng:(rng ()) ~shots:0
      ~expected:[| 0.5; 0.5 |] prog ~input:0 ()
  in
  assert holds;
  assert (not result.Baselines.Verifier.bug_found);
  Alcotest.(check int) "no shots spent" 0
    result.Baselines.Verifier.cost.Sim.Cost.shots

let test_stat_zero_shots_chi_square () =
  Alcotest.(check (float 0.)) "zero statistic" 0.
    (Baselines.Stat_assert.chi_square ~expected:[| 0.5; 0.5 |] ~counts:[]
       ~shots:0)

let test_quito_empty_circuits () =
  (* both programs are gateless identities over 2 qubits: no bug, and the
     full test budget is consumed without early exit *)
  let r =
    Baselines.Quito.check ~rng:(rng ()) ~tests:4 ~reference:(empty_program ())
      ~candidate:(empty_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found);
  Alcotest.(check int) "used all tests" 4 r.Baselines.Verifier.tests_used

let test_quito_empty_never_detects () =
  match
    Baselines.Quito.executions_to_find ~rng:(rng ())
      ~reference:(empty_program ()) ~candidate:(empty_program ()) ()
  with
  | None -> ()
  | Some n -> Alcotest.failf "no bug exists, yet found after %d executions" n

let test_automa_empty_circuits () =
  assert (Baselines.Automa.supports (empty_program ()));
  let r =
    Baselines.Automa.check ~rng:(rng ()) ~tests:4
      ~reference:(empty_program ()) ~candidate:(empty_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_automa_empty_vs_x () =
  (* an empty reference against a bit flip: exact sparse comparison must
     still detect on the very first basis input *)
  let flip = Program.make Circuit.(empty 2 |> x 0 |> x 1) in
  let r =
    Baselines.Automa.check ~rng:(rng ()) ~tests:1
      ~reference:(empty_program ()) ~candidate:flip ()
  in
  assert r.Baselines.Verifier.bug_found

let one_qubit_program () =
  Program.make Circuit.(empty 1 |> h 0 |> tracepoint 1 [ 0 ])

let test_ndd_one_qubit_clean () =
  let r =
    Baselines.Ndd.check ~rng:(rng ()) ~tests:2 ~kind:Baselines.Ndd.General
      ~tracepoint:1 ~reference:(one_qubit_program ())
      ~candidate:(one_qubit_program ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_ndd_one_qubit_detects () =
  (* phase flip after the Hadamard is state-visible at the tracepoint *)
  let broken = Program.make Circuit.(empty 1 |> h 0 |> z 0 |> tracepoint 1 [ 0 ]) in
  let r =
    Baselines.Ndd.check ~rng:(rng ()) ~tests:2 ~kind:Baselines.Ndd.General
      ~tracepoint:1 ~reference:(one_qubit_program ()) ~candidate:broken ()
  in
  assert r.Baselines.Verifier.bug_found;
  match
    Baselines.Ndd.executions_to_find ~rng:(rng ()) ~tracepoint:1
      ~reference:(one_qubit_program ()) ~candidate:broken ()
  with
  | Some n -> assert (n >= 1 && n <= 2)
  | None -> Alcotest.fail "1-qubit phase flip should be detectable"

let test_ndd_one_qubit_cost () =
  (* the 4^n overhead model at its smallest size *)
  Alcotest.(check int) "general 1q" 72
    (Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.General ~n_t:1);
  Alcotest.(check int) "classical 1q" 2
    (Baselines.Ndd.discrimination_gates ~kind:Baselines.Ndd.Classical ~n_t:1)

(* ---------------- Twist ---------------- *)

let test_twist_purity_vector () =
  let v = Baselines.Twist.purity_vector (ghz_program ()) ~input:0 in
  (* GHZ: each qubit maximally mixed (purity 1/2), global pure *)
  Alcotest.(check int) "length" 4 (Array.length v);
  for q = 0 to 2 do
    if Float.abs (v.(q) -. 0.5) > 1e-9 then Alcotest.fail "GHZ qubit purity"
  done

let test_twist_detects_entanglement_change () =
  (* dropping a CX changes single-qubit purities *)
  let broken = Program.make Circuit.(empty 3 |> h 0 |> cx 0 1 |> tracepoint 1 [ 0; 1; 2 ]) in
  let r = Baselines.Twist.check ~rng:(rng ()) ~tests:2 ~reference:(ghz_program ()) ~candidate:broken () in
  assert r.Baselines.Verifier.bug_found

let test_twist_misses_pure_phase () =
  (* terminal phase gate leaves every purity unchanged *)
  let r = Baselines.Twist.check ~rng:(rng ()) ~tests:4 ~reference:(ghz_program ())
      ~candidate:(mutated_ghz_phase ()) ()
  in
  assert (not r.Baselines.Verifier.bug_found)

let test_twist_supports () =
  assert (Baselines.Twist.supports (ghz_program ()));
  let qnn = Benchmarks.Qnn.init (rng ()) ~num_qubits:3 ~layers:1 in
  assert (not (Baselines.Twist.supports (Program.make (Benchmarks.Qnn.body qnn))))

let () =
  Alcotest.run "baselines"
    [
      ( "verifier",
        [
          Alcotest.test_case "distinct inputs" `Quick test_basis_inputs_distinct;
          Alcotest.test_case "capped inputs" `Quick test_basis_inputs_capped;
        ] );
      ( "quito",
        [
          Alcotest.test_case "finds bitflip" `Quick test_quito_finds_bitflip;
          Alcotest.test_case "misses phase" `Quick test_quito_misses_phase;
          Alcotest.test_case "clean program" `Quick test_quito_clean_program;
          Alcotest.test_case "lock grid search" `Quick test_quito_executions_to_find_lock;
        ] );
      ( "ndd",
        [
          Alcotest.test_case "finds phase" `Quick test_ndd_finds_phase;
          Alcotest.test_case "clean" `Quick test_ndd_clean;
          Alcotest.test_case "cost model" `Quick test_ndd_cost_model;
          Alcotest.test_case "overhead recorded" `Quick test_ndd_overhead_recorded;
        ] );
      ( "stat",
        [
          Alcotest.test_case "chi square" `Quick test_stat_chi_square_detects_shift;
          Alcotest.test_case "holds" `Quick test_stat_check_holds;
          Alcotest.test_case "fails" `Quick test_stat_check_fails;
        ] );
      ( "sparse-sim",
        [
          Alcotest.test_case "matches dense" `Quick test_sparse_matches_dense;
          Alcotest.test_case "support growth" `Quick test_sparse_support_growth;
          Alcotest.test_case "global phase" `Quick test_sparse_equal_global_phase;
          Alcotest.test_case "relative phase" `Quick test_sparse_detects_relative_phase;
        ] );
      ( "automa",
        [
          Alcotest.test_case "finds phase" `Quick test_automa_finds_phase;
          Alcotest.test_case "clean" `Quick test_automa_clean;
          Alcotest.test_case "supports" `Quick test_automa_supports;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "stat 0 shots holds" `Quick test_stat_zero_shots_holds;
          Alcotest.test_case "stat 0 shots chi-square" `Quick test_stat_zero_shots_chi_square;
          Alcotest.test_case "quito empty circuits" `Quick test_quito_empty_circuits;
          Alcotest.test_case "quito empty never detects" `Quick test_quito_empty_never_detects;
          Alcotest.test_case "automa empty circuits" `Quick test_automa_empty_circuits;
          Alcotest.test_case "automa empty vs x" `Quick test_automa_empty_vs_x;
          Alcotest.test_case "ndd 1-qubit clean" `Quick test_ndd_one_qubit_clean;
          Alcotest.test_case "ndd 1-qubit detects" `Quick test_ndd_one_qubit_detects;
          Alcotest.test_case "ndd 1-qubit cost" `Quick test_ndd_one_qubit_cost;
        ] );
      ( "twist",
        [
          Alcotest.test_case "purity vector" `Quick test_twist_purity_vector;
          Alcotest.test_case "detects entanglement change" `Quick test_twist_detects_entanglement_change;
          Alcotest.test_case "misses pure phase" `Quick test_twist_misses_pure_phase;
          Alcotest.test_case "supports" `Quick test_twist_supports;
        ] );
    ]
