open Optimize

let rng () = Stats.Rng.make 321

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* concave quadratic with maximum 3 at (0.5, -0.25) *)
let quadratic =
  Objective.make ~dim:2 (fun x ->
      3. -. (2. *. (x.(0) -. 0.5) ** 2.) -. ((x.(1) +. 0.25) ** 2.))

(* multimodal: global max 1 at x = 0.7 *)
let multimodal =
  Objective.make ~dim:1 (fun x ->
      (0.6 *. exp (-50. *. ((x.(0) +. 0.5) ** 2.)))
      +. exp (-50. *. ((x.(0) -. 0.7) ** 2.)))

let solvers : (string * (Stats.Rng.t -> Objective.t -> Solvers.solution)) list =
  [
    ("adam", fun r o -> Solvers.adam r o);
    ("anneal", fun r o -> Solvers.anneal r o);
    ("genetic", fun r o -> Solvers.genetic r o);
    ("qp", fun r o -> Solvers.qp r o);
  ]

let test_objective_helpers () =
  let o = Objective.make ~dim:3 (fun _ -> 0.) in
  let x = [| -5.; 0.3; 5. |] in
  Objective.clamp o x;
  Alcotest.(check (list (float 1e-12))) "clamped" [ -1.; 0.3; 1. ] (Array.to_list x);
  let r = rng () in
  let p = Objective.random_point o r in
  Array.iter (fun v -> assert (v >= -1. && v <= 1.)) p

let test_num_grad () =
  let o = Objective.make ~dim:2 (fun x -> (x.(0) *. x.(0)) +. (3. *. x.(1))) in
  let g = Objective.num_grad o [| 0.4; 0.1 |] in
  check_float "dx" 0.8 g.(0) ~eps:1e-6;
  check_float "dy" 3. g.(1) ~eps:1e-6

let test_solvers_quadratic () =
  List.iter
    (fun (name, solve) ->
      let sol = solve (rng ()) quadratic in
      if Float.abs (sol.Solvers.value -. 3.) > 0.05 then
        Alcotest.failf "%s missed quadratic max: %.4f" name sol.Solvers.value)
    solvers

let test_solvers_multimodal () =
  (* global-capable solvers should escape the local bump *)
  List.iter
    (fun (name, solve) ->
      let sol = solve (rng ()) multimodal in
      if Float.abs (sol.Solvers.value -. 1.) > 0.1 then
        Alcotest.failf "%s missed global max: %.4f at %.3f" name
          sol.Solvers.value sol.Solvers.x.(0))
    [ ("anneal", fun r o -> Solvers.anneal r o);
      ("genetic", fun r o -> Solvers.genetic r o) ]

let test_solution_within_bounds () =
  List.iter
    (fun (name, solve) ->
      let sol = solve (rng ()) quadratic in
      Array.iter
        (fun v ->
          if v < -1.0001 || v > 1.0001 then
            Alcotest.failf "%s left the box" name)
        sol.Solvers.x)
    solvers

let test_evals_counted () =
  let sol = Solvers.anneal ~iters:100 ~restarts:1 (rng ()) quadratic in
  assert (sol.Solvers.evals >= 100)

let test_maximize_dispatch () =
  List.iter
    (fun m ->
      let sol = Solvers.maximize ~budget:4000 m (rng ()) quadratic in
      if Float.abs (sol.Solvers.value -. 3.) > 0.1 then
        Alcotest.failf "%s dispatch failed: %f" (Solvers.method_to_string m)
          sol.Solvers.value)
    [ `Adam; `Anneal; `Genetic; `Qp ]

(* ---------------- convergence on the shared quadratic fixture -----------

   Every solver, several fixed seeds, explicit budgets. [scale] multiplies
   the iteration budget so the same closure can check both "converges at
   full budget" and "more budget never materially hurts". *)

let convergence_cases :
    (string * (int -> int -> Solvers.solution) * float * float) list =
  [
    ( "adam",
      (fun seed scale ->
        Solvers.adam ~iters:(150 * scale) ~restarts:2 (Stats.Rng.make seed)
          quadratic),
      1e-3,
      0.05 );
    ( "anneal",
      (fun seed scale ->
        Solvers.anneal ~iters:(400 * scale) ~restarts:2 (Stats.Rng.make seed)
          quadratic),
      0.03,
      0.3 );
    ( "genetic",
      (fun seed scale ->
        Solvers.genetic ~generations:(15 * scale) ~population:24
          (Stats.Rng.make seed) quadratic),
      0.03,
      0.3 );
    ( "qp",
      (fun seed scale ->
        Solvers.qp ~iters:(25 * scale) ~restarts:2 (Stats.Rng.make seed)
          quadratic),
      1e-6,
      1e-2 );
  ]

let convergence_seeds = [ 11; 222; 3333 ]

let test_convergence_all_solvers () =
  List.iter
    (fun (name, run, vtol, xtol) ->
      List.iter
        (fun seed ->
          let sol = run seed 4 in
          if Float.abs (sol.Solvers.value -. 3.) > vtol then
            Alcotest.failf "%s (seed %d) value %.6f not within %g of 3" name
              seed sol.Solvers.value vtol;
          if
            Float.abs (sol.Solvers.x.(0) -. 0.5) > xtol
            || Float.abs (sol.Solvers.x.(1) +. 0.25) > xtol
          then
            Alcotest.failf "%s (seed %d) converged to (%.3f, %.3f), not (0.5, -0.25)"
              name seed sol.Solvers.x.(0) sol.Solvers.x.(1))
        convergence_seeds)
    convergence_cases

let test_convergence_budget_monotone () =
  (* quadrupling the budget on the same seed must not materially lose value
     (stochastic solvers consume randomness differently per budget, hence
     the tolerance rather than strict monotonicity) *)
  List.iter
    (fun (name, run, _, _) ->
      List.iter
        (fun seed ->
          let lo = run seed 1 and hi = run seed 4 in
          if hi.Solvers.value < lo.Solvers.value -. 0.05 then
            Alcotest.failf "%s (seed %d) got worse with budget: %.4f -> %.4f"
              name seed lo.Solvers.value hi.Solvers.value)
        convergence_seeds)
    convergence_cases

(* constrained: max x + y subject to x + y <= 1 -> value 1 *)
let test_constrained_active () =
  let problem =
    {
      Constrained.objective = Objective.make ~dim:2 (fun x -> x.(0) +. x.(1));
      constraints = [ (fun x -> x.(0) +. x.(1) -. 1.) ];
    }
  in
  let sol = Constrained.maximize ~budget:20000 ~method_:`Anneal (rng ()) problem in
  assert sol.Constrained.feasible;
  check_float "active constraint" 1. sol.Constrained.value ~eps:0.05

let test_constrained_inactive () =
  (* unconstrained max (0,0) already feasible *)
  let problem =
    {
      Constrained.objective =
        Objective.make ~dim:2 (fun x -> -.(x.(0) ** 2.) -. (x.(1) ** 2.));
      constraints = [ (fun x -> x.(0) -. 10.) ];
    }
  in
  let sol = Constrained.maximize ~method_:`Qp (rng ()) problem in
  assert sol.Constrained.feasible;
  check_float "interior max" 0. sol.Constrained.value ~eps:0.01

let test_constrained_infeasible () =
  (* contradictory constraints must be reported infeasible *)
  let problem =
    {
      Constrained.objective = Objective.make ~dim:1 (fun x -> x.(0));
      constraints = [ (fun x -> x.(0) -. 0.5); (fun x -> 0.6 -. x.(0)) ];
    }
  in
  let sol = Constrained.maximize ~method_:`Anneal (rng ()) problem in
  assert (not sol.Constrained.feasible)

let test_qp_exact_on_quadratic () =
  (* the QP solver should nail a pure quadratic very precisely *)
  let sol = Solvers.qp ~iters:100 ~restarts:2 (rng ()) quadratic in
  check_float "qp value" 3. sol.Solvers.value ~eps:1e-3;
  check_float "qp x0" 0.5 sol.Solvers.x.(0) ~eps:0.05;
  check_float "qp x1" (-0.25) sol.Solvers.x.(1) ~eps:0.05

let prop_solutions_bounded =
  QCheck.Test.make ~name:"random quadratics stay bounded" ~count:20
    QCheck.(pair (float_range (-0.9) 0.9) (float_range (-0.9) 0.9))
    (fun (cx, cy) ->
      let o =
        Objective.make ~dim:2 (fun x ->
            -.((x.(0) -. cx) ** 2.) -. ((x.(1) -. cy) ** 2.))
      in
      let sol = Solvers.qp ~iters:40 ~restarts:2 (rng ()) o in
      sol.Solvers.value > -0.2)

let () =
  Alcotest.run "optimize"
    [
      ( "objective",
        [
          Alcotest.test_case "helpers" `Quick test_objective_helpers;
          Alcotest.test_case "num grad" `Quick test_num_grad;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "quadratic" `Quick test_solvers_quadratic;
          Alcotest.test_case "multimodal" `Quick test_solvers_multimodal;
          Alcotest.test_case "bounds" `Quick test_solution_within_bounds;
          Alcotest.test_case "eval counting" `Quick test_evals_counted;
          Alcotest.test_case "dispatch" `Quick test_maximize_dispatch;
          Alcotest.test_case "qp exact" `Quick test_qp_exact_on_quadratic;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "all solvers, fixed seeds" `Quick
            test_convergence_all_solvers;
          Alcotest.test_case "budget monotone" `Quick
            test_convergence_budget_monotone;
        ] );
      ( "constrained",
        [
          Alcotest.test_case "active" `Quick test_constrained_active;
          Alcotest.test_case "inactive" `Quick test_constrained_inactive;
          Alcotest.test_case "infeasible" `Quick test_constrained_infeasible;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_solutions_bounded ]);
    ]
