open Morphcore
open Linalg

let rng () = Stats.Rng.make 2024

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let dm_of_state st =
  let v = Qstate.Statevec.to_cvec st in
  Cmat.outer v v

let zero_dm = dm_of_state (Qstate.Statevec.basis 1 0)
let one_dm = dm_of_state (Qstate.Statevec.basis 1 1)

(* ---------------- Program ---------------- *)

let test_program_embed () =
  let c = Circuit.empty 3 in
  let p = Program.make ~input_qubits:[ 2 ] c in
  let embedded = Program.embed p (Qstate.Statevec.basis 1 1) in
  check_float "q2 set" 1. (Qstate.Statevec.prob1 embedded 2);
  check_float "q0 clear" 0. (Qstate.Statevec.prob1 embedded 0)

let test_program_run_traces_includes_input () =
  let c = Circuit.(empty 2 |> tracepoint 1 [ 0 ]) in
  let p = Program.make c in
  let traces = Program.run_traces p ~input:(Qstate.Statevec.basis 2 1) in
  assert (List.mem_assoc 0 traces);
  assert (List.mem_assoc 1 traces)

(* ---------------- Predicate ---------------- *)

let env_const m : Predicate.env = fun _ -> m

let test_predicate_is_pure () =
  assert (Predicate.holds (Predicate.Is_pure 0) (env_const zero_dm));
  let mixed = Cmat.rscale 0.5 (Cmat.identity 2) in
  assert (not (Predicate.holds (Predicate.Is_pure 0) (env_const mixed)))

let test_predicate_equals () =
  let env tp = if tp = 0 then zero_dm else one_dm in
  assert (not (Predicate.holds (Predicate.Equals (0, 1)) env));
  assert (Predicate.holds (Predicate.Equals (0, 0)) env);
  assert (Predicate.holds (Predicate.Equals_const (1, one_dm)) env);
  assert (Predicate.holds (Predicate.Not_equals_const (1, zero_dm, 0.5)) env)

let test_predicate_expectation () =
  let z = Qstate.Pauli.single 1 0 Qstate.Pauli.Z in
  assert (Predicate.holds (Predicate.Expect_ge (0, z, 0.9)) (env_const zero_dm));
  assert (not (Predicate.holds (Predicate.Expect_ge (0, z, 0.9)) (env_const one_dm)));
  assert (Predicate.holds (Predicate.Expect_le (0, z, -0.9)) (env_const one_dm))

let test_predicate_diag_range () =
  assert (Predicate.holds (Predicate.Diag_in_range (0, 0, 0.9, 1.1)) (env_const zero_dm));
  assert (not (Predicate.holds (Predicate.Diag_in_range (0, 1, 0.5, 1.)) (env_const zero_dm)))

let test_predicate_purity_ge () =
  assert (Predicate.holds (Predicate.Purity_ge (0, 0.99)) (env_const zero_dm));
  let mixed = Cmat.rscale 0.5 (Cmat.identity 2) in
  assert (not (Predicate.holds (Predicate.Purity_ge (0, 0.9)) (env_const mixed)))

let test_predicate_tracepoints () =
  Alcotest.(check (list int)) "equals" [ 1; 2 ]
    (Predicate.tracepoints (Predicate.Equals (1, 2)));
  Alcotest.(check (list int)) "const" [ 3 ]
    (Predicate.tracepoints (Predicate.Equals_const (3, zero_dm)))

(* ---------------- Assertion ---------------- *)

let test_assertion_implication () =
  (* failed assumption -> assertion holds vacuously *)
  let a =
    Assertion.make
      ~assumes:[ Predicate.Equals_const (0, one_dm) ]
      ~guarantees:[ Predicate.Equals_const (0, one_dm) ]
      ()
  in
  assert (Assertion.holds a (env_const zero_dm));
  (* satisfied assumption + violated guarantee -> fails *)
  let b =
    Assertion.make
      ~assumes:[ Predicate.Is_pure 0 ]
      ~guarantees:[ Predicate.Equals_const (0, one_dm) ]
      ()
  in
  assert (not (Assertion.holds b (env_const zero_dm)))

let test_assertion_requires_guarantee () =
  Alcotest.check_raises "empty guarantee"
    (Invalid_argument "Assertion.make: no guarantees") (fun () ->
      ignore (Assertion.make ~assumes:[] ~guarantees:[] ()))

(* ---------------- Characterize / Approx ---------------- *)

let identity_program n =
  Program.make Circuit.(empty n |> tracepoint 1 (List.init n (fun q -> q)))

let test_characterize_shapes () =
  let r = rng () in
  let p = identity_program 2 in
  let c = Characterize.run ~rng:r p ~count:6 in
  Alcotest.(check int) "samples" 6 (Array.length c.Characterize.samples);
  Alcotest.(check (list int)) "tracepoints" [ 0; 1 ] (Characterize.tracepoint_ids c);
  assert (c.Characterize.cost.Sim.Cost.executions > 0)

let test_characterize_custom_inputs () =
  let r = rng () in
  let p = identity_program 1 in
  let inputs = [ Qstate.Statevec.basis 1 0; Qstate.Statevec.basis 1 1 ] in
  let c = Characterize.run ~rng:r ~inputs p ~count:0 in
  Alcotest.(check int) "two samples" 2 (Array.length c.Characterize.samples)

let test_characterize_tomography_cost () =
  let r = rng () in
  let p = identity_program 1 in
  let c =
    Characterize.run ~rng:r ~mode:(Characterize.Tomography { shots = 100; project = true })
      p ~count:2
  in
  (* 2 samples x (1 tracepoint x 3 settings) = 6 executions *)
  Alcotest.(check int) "executions" 6 c.Characterize.cost.Sim.Cost.executions;
  Alcotest.(check int) "shots" 600 c.Characterize.cost.Sim.Cost.shots

let test_approx_exact_on_identity () =
  (* identity program: tracepoint state must equal the input exactly for any
     input in the sampled span *)
  let r = rng () in
  let p = identity_program 1 in
  (* the 1-qubit tomography basis spans the full Hermitian space *)
  let plus =
    Qstate.Statevec.of_cvec 1
      (Cvec.rscale (1. /. sqrt 2.) (Cvec.of_list [ Cx.one; Cx.one ]))
  in
  let plus_i =
    Qstate.Statevec.of_cvec 1
      (Cvec.rscale (1. /. sqrt 2.) (Cvec.of_list [ Cx.one; Cx.i ]))
  in
  let inputs =
    [ Qstate.Statevec.basis 1 0; Qstate.Statevec.basis 1 1; plus; plus_i ]
  in
  let c = Characterize.run ~rng:r ~inputs p ~count:0 in
  let approx = Approx.of_characterization c in
  for _ = 1 to 10 do
    let test_in = dm_of_state (Clifford.Sampling.haar_state r 1) in
    let out = Approx.state_at approx ~tracepoint:1 test_in in
    let acc = Approx.accuracy out test_in in
    check_float "identity accuracy" 1. acc ~eps:1e-6
  done

let test_approx_case1_exact () =
  (* Theorem 2 case 1: inputs in the sampled span are exactly reproduced,
     through a non-trivial unitary *)
  let r = rng () in
  let circ = Circuit.(empty 2 |> h 0 |> cx 0 1 |> rz 0.37 1 |> tracepoint 1 [ 0; 1 ]) in
  let p = Program.make circ in
  let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar p ~count:8 in
  let approx = Approx.of_characterization c in
  (* mixture of sampled inputs = case 1 *)
  let sampled = Array.to_list (Array.map (fun s -> s.Characterize.input_state) c.Characterize.samples) in
  let rho_in = Clifford.Sampling.random_mixture r sampled in
  let predicted = Approx.state_at approx ~tracepoint:1 rho_in in
  (* ground truth by density simulation *)
  let truth =
    let dm = Qstate.Density.of_cmat 2 rho_in in
    let o = Sim.Dm_engine.run ~initial:dm circ in
    List.assoc 1 o.Sim.Dm_engine.traces
  in
  check_float "case1 exact" 1. (Approx.accuracy predicted truth) ~eps:1e-6

let test_approx_accuracy_improves_with_samples () =
  let r = rng () in
  let circ = Circuit.(empty 2 |> h 0 |> cx 0 1 |> t_gate 1 |> tracepoint 1 [ 0; 1 ]) in
  let p = Program.make circ in
  let acc_at count =
    let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar p ~count in
    let approx = Approx.of_characterization c in
    let accs = Verify.probe_accuracies ~rng:r ~count:12 approx p ~tracepoint:1 in
    Stats.Describe.mean accs
  in
  let low = acc_at 2 and high = acc_at 16 in
  if high < low +. 0.05 then
    Alcotest.failf "accuracy did not improve: %.3f -> %.3f" low high;
  if high < 0.95 then Alcotest.failf "high-sample accuracy too low: %.3f" high

let test_approx_theoretical_accuracy () =
  check_float "half" 0.5 (Approx.theoretical_accuracy ~n_in:2 ~n_sample:4);
  check_float "capped" 1. (Approx.theoretical_accuracy ~n_in:1 ~n_sample:100);
  Alcotest.(check int) "full samples" 8 (Approx.samples_for_full_accuracy ~n_in:2)

let test_approx_decompose_modes () =
  let r = rng () in
  let p = identity_program 1 in
  let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar p ~count:6 in
  let approx = Approx.of_characterization c in
  let rho = dm_of_state (Clifford.Sampling.haar_state r 1) in
  let a_ls = Approx.decompose ~mode:`Least_squares approx rho in
  let a_exp = Approx.decompose ~mode:`Expectation approx rho in
  Alcotest.(check int) "dims" (Array.length a_ls) (Array.length a_exp);
  (* least squares reconstruction beats the expectation heuristic *)
  let err mode_alpha =
    Cmat.frob_norm (Cmat.sub rho (Approx.input_of_alpha approx mode_alpha))
  in
  assert (err a_ls <= err a_exp +. 1e-9)

let test_approx_chain () =
  let f1 rho = Cmat.rscale 2. rho and f2 rho = Cmat.rscale 3. rho in
  let out = Approx.chain [ f1; f2 ] (Cmat.identity 2) in
  check_float "chained scale" 6. (Cx.re (Cmat.get out 0 0))

(* ---------------- Confidence ---------------- *)

let test_confidence_increases_with_samples () =
  let accs = [| 0.55; 0.6; 0.62; 0.58; 0.63; 0.57 |] in
  let low = (Confidence.estimate ~n_in:3 ~n_sample:4 accs).Confidence.confidence in
  let high = (Confidence.estimate ~n_in:3 ~n_sample:16 accs).Confidence.confidence in
  if high < low then Alcotest.fail "confidence must grow with samples"

let test_confidence_bounds () =
  let c = Confidence.estimate ~n_in:2 ~n_sample:8 [| 0.9; 0.95; 0.92 |] in
  assert (c.Confidence.confidence >= 0. && c.Confidence.confidence <= 1.)

let test_confidence_required_samples () =
  Alcotest.(check int) "required" 8
    (Confidence.required_samples ~n_in:2 ~target_accuracy:1.);
  Alcotest.(check int) "half" 4
    (Confidence.required_samples ~n_in:2 ~target_accuracy:0.5)

let test_exhaustive_confidence () =
  check_float "linear" 0.5 (Confidence.exhaustive_confidence ~space:100. ~tested:50.);
  check_float "capped" 1. (Confidence.exhaustive_confidence ~space:10. ~tested:20.)

(* ---------------- Prune ---------------- *)

let test_prune_adapt () =
  let r = rng () in
  (* dataset concentrated on |0> and |1>: two eigenvectors suffice *)
  let dataset =
    List.init 20 (fun i -> if i mod 2 = 0 then zero_dm else one_dm)
  in
  let kept = Prune.strategy_adapt ~energy:0.99 dataset in
  Alcotest.(check int) "two directions" 2 (List.length kept);
  let top = Prune.strategy_adapt_top ~keep:1 dataset in
  Alcotest.(check int) "top 1" 1 (List.length top);
  ignore r

let test_prune_const () =
  let p = Program.make (Circuit.empty 3) in
  let restricted = Prune.strategy_const p ~variable_qubits:[ 0; 1 ] in
  Alcotest.(check int) "restricted input" 2 (Program.num_input_qubits restricted);
  Alcotest.check_raises "not a subset"
    (Invalid_argument "Prune.strategy_const: qubit not in the current input")
    (fun () ->
      ignore (Prune.strategy_const restricted ~variable_qubits:[ 2 ]))

let test_prune_prop_reduction () =
  Alcotest.(check int) "3^2" 9 (Prune.prop_shot_reduction ~n_t:2);
  Alcotest.(check int) "3^4" 81 (Prune.prop_shot_reduction ~n_t:4)

(* ---------------- Verify (end to end) ---------------- *)

let lock_program ?unexpected_key () =
  let lock = Benchmarks.Quantum_lock.make ~key:1 ?unexpected_key 3 in
  ( Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
      lock.Benchmarks.Quantum_lock.circuit,
    lock )

let lock_assertion =
  Assertion.make ~name:"lock"
    ~assumes:[ Predicate.Diag_in_range (1, 1, 0., 0.01) ]
    ~guarantees:[ Predicate.Equals_const (2, zero_dm) ]
    ()

let test_verify_correct_lock () =
  let r = rng () in
  let prog, _ = lock_program () in
  let c = Characterize.run ~rng:r prog ~count:16 in
  let approx = Approx.of_characterization c in
  match Verify.validate ~rng:r ~confirm:prog approx lock_assertion with
  | Verify.Verified _ -> ()
  | Verify.Violated { objective; _ } ->
      Alcotest.failf "false positive on correct lock (obj %.3f)" objective

let test_verify_buggy_lock () =
  let r = rng () in
  let prog, _ = lock_program ~unexpected_key:6 () in
  let c = Characterize.run ~rng:r prog ~count:16 in
  let approx = Approx.of_characterization c in
  match Verify.validate ~rng:r ~confirm:prog approx lock_assertion with
  | Verify.Violated { counterexample; _ } ->
      (* counterexample must be a valid state *)
      assert (Qstate.Density.is_valid ~eps:1e-6 (Qstate.Density.of_cmat 3 counterexample))
  | Verify.Verified _ -> Alcotest.fail "missed the planted bug"

let test_verify_teleport () =
  let r = rng () in
  let prog = Program.make ~input_qubits:[ 0 ] (Benchmarks.Teleport.single ()) in
  let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar prog ~count:6 in
  let approx = Approx.of_characterization c in
  let a =
    Assertion.make ~name:"teleport"
      ~assumes:[ Predicate.Is_pure 0 ]
      ~guarantees:[ Predicate.Equals (0, 2) ]
      ()
  in
  match Verify.validate ~rng:r approx a with
  | Verify.Verified { max_objective; _ } ->
      if max_objective > 0.05 then Alcotest.fail "objective should be ~0"
  | Verify.Violated _ -> Alcotest.fail "teleportation is correct"

let test_verify_check_on_program () =
  let prog, _ = lock_program ~unexpected_key:6 () in
  (* basis input 6 violates; basis input 3 satisfies *)
  assert (not (Verify.check_on_program prog lock_assertion ~input:(Qstate.Statevec.basis 3 6)));
  assert (Verify.check_on_program prog lock_assertion ~input:(Qstate.Statevec.basis 3 3))

let test_verify_probe_accuracies_range () =
  let r = rng () in
  let p = identity_program 2 in
  let c = Characterize.run ~rng:r p ~count:16 in
  let approx = Approx.of_characterization c in
  let accs = Verify.probe_accuracies ~rng:r ~count:8 approx p ~tracepoint:1 in
  Array.iter (fun a -> assert (a >= -1e-9 && a <= 1. +. 1e-6)) accs

(* ---------------- Prop_approx ---------------- *)

let test_prop_approx_exact_on_span () =
  let r = rng () in
  let circ = Circuit.(empty 2 |> h 0 |> cx 0 1 |> rz 0.4 1 |> tracepoint 1 [ 0; 1 ]) in
  let p = Program.make circ in
  (* full-span Haar samples: predictions must be exact for any input *)
  let inputs = List.init 16 (fun _ -> Clifford.Sampling.haar_state r 2) in
  let c = Characterize.run ~rng:r ~inputs p ~count:0 in
  let zz = Qstate.Pauli.of_string "ZZ" and xi = Qstate.Pauli.of_string "XI" in
  let pa = Prop_approx.of_characterization ~observables:[ zz; xi ] ~tracepoint:1 c in
  for _ = 1 to 6 do
    let input = Clifford.Sampling.haar_state r 2 in
    let truth = List.assoc 1 (Program.run_traces ~rng:r p ~input) in
    let predicted = Prop_approx.predict pa (dm_of_state input) in
    check_float "ZZ" (Qstate.Pauli.expectation_dm zz truth) predicted.(0) ~eps:1e-6;
    check_float "XI" (Qstate.Pauli.expectation_dm xi truth) predicted.(1) ~eps:1e-6
  done

let test_prop_approx_settings () =
  let r = rng () in
  let p = identity_program 2 in
  let c = Characterize.run ~rng:r p ~count:4 in
  let obs = [ Qstate.Pauli.of_string "ZZ"; Qstate.Pauli.of_string "ZI"; Qstate.Pauli.of_string "XX" ] in
  let pa = Prop_approx.of_characterization ~observables:obs ~tracepoint:1 c in
  (* ZZ and ZI share a support pattern family but differ here; count distinct *)
  Alcotest.(check int) "settings" 3 (Prop_approx.measurement_settings pa);
  Alcotest.(check int) "obs count" 3 (List.length (Prop_approx.observables pa))

let test_prop_approx_clamped () =
  let r = rng () in
  let p = identity_program 1 in
  let c = Characterize.run ~rng:r p ~count:2 in
  let pa =
    Prop_approx.of_characterization
      ~observables:[ Qstate.Pauli.of_string "Z" ] ~tracepoint:1 c
  in
  for _ = 1 to 10 do
    let v = (Prop_approx.predict pa (dm_of_state (Clifford.Sampling.haar_state r 1))).(0) in
    assert (v >= -1. && v <= 1.)
  done

(* ---------------- counterexample minimization + properties ---------------- *)

let test_minimize_counterexample_lock () =
  let r = rng () in
  let prog, lock = lock_program ~unexpected_key:6 () in
  let c = Characterize.run ~rng:r prog ~count:16 in
  let approx = Approx.of_characterization c in
  match Verify.validate ~rng:r ~confirm:prog approx lock_assertion with
  | Verify.Violated { counterexample; _ } ->
      let minimized =
        Verify.minimize_counterexample prog lock_assertion ~counterexample
      in
      (* the minimized input must itself violate the assertion *)
      assert (not (Verify.check_on_program prog lock_assertion ~input:minimized));
      ignore lock
  | Verify.Verified _ -> Alcotest.fail "bug missed"

let prop_isomorphism_linearity =
  (* Theorem 1's heart: the approximation is linear — f(a rho1 + b rho2) =
     a f(rho1) + b f(rho2) for the least-squares decomposition *)
  QCheck.Test.make ~name:"approximation is linear" ~count:25
    QCheck.(triple (int_range 0 10_000) (float_range 0.1 0.9) (float_range 0.1 0.9))
    (fun (seed, a, b) ->
      let r = Stats.Rng.make seed in
      let circ = Circuit.(empty 2 |> h 0 |> cx 0 1 |> t_gate 1 |> tracepoint 1 [ 0; 1 ]) in
      let p = Program.make circ in
      let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar p ~count:6 in
      let approx = Approx.of_characterization c in
      let rho1 = dm_of_state (Clifford.Sampling.haar_state r 2) in
      let rho2 = dm_of_state (Clifford.Sampling.haar_state r 2) in
      let lhs =
        Approx.state_at ~physical:false approx ~tracepoint:1
          (Cmat.add (Cmat.rscale a rho1) (Cmat.rscale b rho2))
      in
      let rhs =
        Cmat.add
          (Cmat.rscale a (Approx.state_at ~physical:false approx ~tracepoint:1 rho1))
          (Cmat.rscale b (Approx.state_at ~physical:false approx ~tracepoint:1 rho2))
      in
      Cmat.frob_norm (Cmat.sub lhs rhs) < 1e-6)

let prop_case1_exactness =
  (* any convex mixture of sampled inputs is reproduced exactly *)
  QCheck.Test.make ~name:"case-1 inputs are exact" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = Stats.Rng.make seed in
      let circ = Circuit.(empty 2 |> h 1 |> cx 1 0 |> s 0 |> tracepoint 1 [ 0; 1 ]) in
      let p = Program.make circ in
      let c = Characterize.run ~rng:r ~kind:Clifford.Sampling.Haar p ~count:6 in
      let approx = Approx.of_characterization c in
      let sampled =
        Array.to_list
          (Array.map (fun s -> s.Characterize.input_state) c.Characterize.samples)
      in
      let rho_in = Clifford.Sampling.random_mixture r sampled in
      let predicted = Approx.state_at approx ~tracepoint:1 rho_in in
      let truth =
        let o = Sim.Dm_engine.run ~initial:(Qstate.Density.of_cmat 2 rho_in) circ in
        List.assoc 1 o.Sim.Dm_engine.traces
      in
      Approx.accuracy predicted truth > 1. -. 1e-6)

(* ---------------- distribution assertions ---------------- *)

let ghz3 = Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2)
let ghz3_dist () = Assertion.Dist.make [ (0, 0.5); (7, 0.5) ]

let test_dist_validation () =
  let d = ghz3_dist () in
  check_float ~eps:1e-12 "other mass" 0. (Assertion.Dist.other_mass d);
  check_float "default significance" 0.05 d.Assertion.Dist.significance;
  List.iter
    (fun (sig_, pairs) ->
      match Assertion.Dist.make ?significance:sig_ pairs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Dist.make accepted an invalid spec")
    [
      (None, []);
      (None, [ (0, 0.5); (0, 0.5) ]) (* duplicate index *);
      (None, [ (-1, 0.5) ]);
      (None, [ (0, 1.5) ]);
      (None, [ (0, 0.7); (1, 0.7) ]) (* mass > 1 *);
      (Some 0., [ (0, 0.5) ]);
      (Some 1., [ (0, 0.5) ]);
    ]

let test_check_counts_fixed_holds () =
  let program = Program.make ghz3 in
  let input = Qstate.Statevec.basis 3 0 in
  let r =
    Verify.check_counts ~budget:(`Fixed 2048) ~rng:(rng ()) program
      (ghz3_dist ()) ~input
  in
  if not r.Verify.counts_hold then
    Alcotest.failf "GHZ counts rejected (p = %g)" r.Verify.test.Stats.Tests.pvalue;
  Alcotest.(check int) "spent the fixed budget" 2048 r.Verify.shots_used;
  Alcotest.(check bool) "no early stop on fixed" false r.Verify.early_stop

let test_check_counts_sequential_agrees () =
  (* same program, same expectation: the sequential budget must reach the
     same verdict while spending strictly fewer shots (GHZ accepts in the
     first few SPRT blocks) *)
  let program = Program.make ghz3 in
  let input = Qstate.Statevec.basis 3 0 in
  let budget =
    `Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = 2048 }
  in
  let r = Verify.check_counts ~budget ~rng:(rng ()) program (ghz3_dist ()) ~input in
  Alcotest.(check bool) "holds" true r.Verify.counts_hold;
  Alcotest.(check bool) "stopped early" true r.Verify.early_stop;
  if r.Verify.shots_used >= 2048 then
    Alcotest.failf "sequential spent the whole cap (%d)" r.Verify.shots_used

let test_check_counts_rejects_wrong_dist () =
  let program = Program.make ghz3 in
  let input = Qstate.Statevec.basis 3 0 in
  let wrong = Assertion.Dist.make [ (0, 0.9); (7, 0.1) ] in
  List.iter
    (fun budget ->
      let r = Verify.check_counts ~budget ~rng:(rng ()) program wrong ~input in
      if r.Verify.counts_hold then
        Alcotest.fail "0.9/0.1 expectation must be rejected on GHZ")
    [
      `Fixed 2048;
      `Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = 2048 };
    ]

let test_check_counts_impossible_outcome () =
  (* claiming all mass on |111> while the program emits |000> half the
     time: a zero-probability category is observed, so the sequential
     path must reject with certainty (p = 0) *)
  let program = Program.make ghz3 in
  let input = Qstate.Statevec.basis 3 0 in
  let point = Assertion.Dist.make [ (7, 1.0) ] in
  let r =
    Verify.check_counts
      ~budget:(`Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = 4096 })
      ~rng:(rng ()) program point ~input
  in
  Alcotest.(check bool) "rejected" false r.Verify.counts_hold;
  check_float ~eps:0. "certain rejection" 0. r.Verify.test.Stats.Tests.pvalue

let test_probe_assertion_budgets () =
  (* identity program, trivially-true guarantee: fixed and sequential
     budgets agree, sequential accepting after ~14 Haar probes *)
  let c = Circuit.(empty 1 |> tracepoint 1 [ 0 ] |> tracepoint 2 [ 0 ]) in
  let program = Program.make c in
  let assertion =
    Assertion.make ~name:"id"
      ~assumes:[ Predicate.Is_pure 1 ]
      ~guarantees:[ Predicate.Purity_ge (2, 0.5) ]
      ()
  in
  let fixed = Verify.probe_assertion ~rng:(rng ()) ~budget:(`Fixed 32) program assertion in
  Alcotest.(check bool) "fixed holds" true fixed.Verify.probe_holds;
  Alcotest.(check int) "fixed trials" 32 fixed.Verify.trials;
  let seq =
    Verify.probe_assertion ~rng:(rng ())
      ~budget:(`Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = 64 })
      program assertion
  in
  Alcotest.(check bool) "sequential holds" true seq.Verify.probe_holds;
  Alcotest.(check bool) "sequential stops early" true seq.Verify.probe_early_stop;
  if seq.Verify.trials >= fixed.Verify.trials then
    Alcotest.failf "sequential used %d trials >= fixed %d" seq.Verify.trials
      fixed.Verify.trials

let test_sequential_tomography_matches_fixed () =
  (* sequential tomography on a basis state: strictly fewer shots, same
     reconstruction to within the shot-noise of the cap *)
  let c = Circuit.(empty 2 |> x 0 |> tracepoint 1 [ 0; 1 ]) in
  let program = Program.make c in
  let budget =
    `Sequential { Stats.Tests.alpha = 0.05; beta = 0.05; max_shots = 256 }
  in
  let run_mode budget =
    Characterize.run ~rng:(rng ())
      ~mode:(Characterize.Tomography { shots = 256; project = true })
      ?budget program ~count:2
  in
  let fixed = run_mode None and seq = run_mode (Some budget) in
  let cost c = c.Characterize.cost.Sim.Cost.shots in
  if cost seq >= cost fixed then
    Alcotest.failf "sequential tomography spent %d shots >= fixed %d" (cost seq)
      (cost fixed);
  Array.iter2
    (fun (a : Characterize.sample) (b : Characterize.sample) ->
      List.iter2
        (fun (ia, ma) (ib, mb) ->
          if ia <> ib then Alcotest.fail "tracepoint ids diverged";
          if Cmat.frob_norm (Cmat.sub ma mb) > 0.35 then
            Alcotest.fail "sequential reconstruction drifted from fixed")
        a.Characterize.traces b.Characterize.traces)
    fixed.Characterize.samples seq.Characterize.samples

let () =
  Alcotest.run "core"
    [
      ( "program",
        [
          Alcotest.test_case "embed" `Quick test_program_embed;
          Alcotest.test_case "traces include input" `Quick test_program_run_traces_includes_input;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "is_pure" `Quick test_predicate_is_pure;
          Alcotest.test_case "equals" `Quick test_predicate_equals;
          Alcotest.test_case "expectation" `Quick test_predicate_expectation;
          Alcotest.test_case "diag range" `Quick test_predicate_diag_range;
          Alcotest.test_case "purity" `Quick test_predicate_purity_ge;
          Alcotest.test_case "tracepoints" `Quick test_predicate_tracepoints;
        ] );
      ( "assertion",
        [
          Alcotest.test_case "implication" `Quick test_assertion_implication;
          Alcotest.test_case "requires guarantee" `Quick test_assertion_requires_guarantee;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "shapes" `Quick test_characterize_shapes;
          Alcotest.test_case "custom inputs" `Quick test_characterize_custom_inputs;
          Alcotest.test_case "tomography cost" `Quick test_characterize_tomography_cost;
        ] );
      ( "approx",
        [
          Alcotest.test_case "exact on identity" `Quick test_approx_exact_on_identity;
          Alcotest.test_case "case1 exact" `Quick test_approx_case1_exact;
          Alcotest.test_case "improves with samples" `Slow test_approx_accuracy_improves_with_samples;
          Alcotest.test_case "theoretical accuracy" `Quick test_approx_theoretical_accuracy;
          Alcotest.test_case "decompose modes" `Quick test_approx_decompose_modes;
          Alcotest.test_case "chain" `Quick test_approx_chain;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "monotone in samples" `Quick test_confidence_increases_with_samples;
          Alcotest.test_case "bounds" `Quick test_confidence_bounds;
          Alcotest.test_case "required samples" `Quick test_confidence_required_samples;
          Alcotest.test_case "exhaustive baseline" `Quick test_exhaustive_confidence;
        ] );
      ( "prune",
        [
          Alcotest.test_case "adapt" `Quick test_prune_adapt;
          Alcotest.test_case "const" `Quick test_prune_const;
          Alcotest.test_case "prop" `Quick test_prune_prop_reduction;
        ] );
      ( "prop-approx",
        [
          Alcotest.test_case "exact on span" `Quick test_prop_approx_exact_on_span;
          Alcotest.test_case "settings" `Quick test_prop_approx_settings;
          Alcotest.test_case "clamped" `Quick test_prop_approx_clamped;
        ] );
      ( "verify",
        [
          Alcotest.test_case "correct lock" `Slow test_verify_correct_lock;
          Alcotest.test_case "buggy lock" `Slow test_verify_buggy_lock;
          Alcotest.test_case "teleport" `Slow test_verify_teleport;
          Alcotest.test_case "check on program" `Quick test_verify_check_on_program;
          Alcotest.test_case "probe accuracies" `Quick test_verify_probe_accuracies_range;
          Alcotest.test_case "minimize counterexample" `Slow test_minimize_counterexample_lock;
        ] );
      ( "dist-verdicts",
        [
          Alcotest.test_case "dist validation" `Quick test_dist_validation;
          Alcotest.test_case "check_counts fixed holds" `Quick test_check_counts_fixed_holds;
          Alcotest.test_case "sequential agrees, stops early" `Quick test_check_counts_sequential_agrees;
          Alcotest.test_case "wrong dist rejected" `Quick test_check_counts_rejects_wrong_dist;
          Alcotest.test_case "impossible outcome certain" `Quick test_check_counts_impossible_outcome;
          Alcotest.test_case "probe_assertion budgets" `Quick test_probe_assertion_budgets;
          Alcotest.test_case "sequential tomography" `Quick test_sequential_tomography_matches_fixed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_isomorphism_linearity; prop_case1_exactness ] );
    ]
