(* Static-analysis subsystem tests (DESIGN.md §10): golden lint
   diagnostics with file:line positions, lightcone/classify/dataflow unit
   tests, and QCheck soundness properties for analysis-driven pruning and
   stabilizer routing. *)

open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

(* ----------------------- golden lint diagnostics ---------------------- *)

let codes ds = List.map (fun d -> d.Analysis.Lint.code) ds

let has_code code ds = List.mem code (codes ds)

let find_code name code ds =
  match List.find_opt (fun d -> d.Analysis.Lint.code = code) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "%s: expected %s among [%s]" name code
        (String.concat "; " (codes ds))

(* every diagnostic the golden corpus triggers, with its source location *)
let golden =
  [
    ("syntax error", "qreg q[1];\nh q[0] oops;", "MQ000", Some (2, 8));
    ("qubit range", "qreg q[2];\nh q[5];", "MQ001", Some (2, 1));
    ( "clbit range",
      "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[5];",
      "MQ002",
      Some (3, 1) );
    ("duplicate operand", "qreg q[2];\ncx q[0],q[0];", "MQ003", Some (2, 1));
    ( "duplicate tracepoint",
      "qreg q[1];\nT 1 q[0];\nh q[0];\nT 1 q[0];",
      "MQ004",
      Some (4, 1) );
    ( "feedback unwritten",
      "qreg q[2];\ncreg c[1];\nif (c[0]==1) x q[1];",
      "MQ005",
      Some (3, 1) );
    ( "overwritten measure",
      "qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> \
       c[0];\nif (c[0]==1) x q[1];",
      "MQ006",
      Some (3, 1) );
    ( "gate after measure",
      "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\nh q[0];",
      "MQ007",
      Some (4, 1) );
    ("unused qubit", "qreg q[3];\nh q[0];\ncx q[0],q[1];", "MQ008", None);
    ( "unreachable feedback value",
      "qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nif (c[0]==2) x q[1];",
      "MQ009",
      Some (4, 1) );
    ("no-op barrier", "qreg q[2];\nbarrier q[0],q[1];\nh q[0];", "MQ010", Some (2, 1));
    ("no tracepoints", "qreg q[1];\nh q[0];", "MQ011", None);
    ( "untouched tracepoint",
      "qreg q[2];\nT 1 q[0];\nh q[0];\nT 2 q[1];",
      "MQ012",
      Some (4, 1) );
    ("unknown gate", "qreg q[1];\nbanana q[0];", "MQ015", Some (2, 1));
    ("bad register", "qreg q[0];", "MQ016", Some (1, 1));
  ]

let test_golden_corpus () =
  List.iter
    (fun (name, src, code, loc) ->
      let d = find_code name code (Analysis.Lint.lint_qasm src) in
      Alcotest.(check (option (pair int int))) (name ^ " loc") loc d.Analysis.Lint.loc;
      Alcotest.(check bool)
        (name ^ " severity matches table") true
        (d.Analysis.Lint.severity = Analysis.Lint.severity_of_code code))
    golden

(* the shipped example corpus must stay free of errors and warnings.
   `dune runtest` runs from _build/default/test (the corpus is a declared
   dep at ../examples/qasm); a bare `dune exec` runs from the project
   root. *)
let example_dir () =
  List.find Sys.file_exists [ "../examples/qasm"; "examples/qasm" ]

let test_examples_clean () =
  List.iter
    (fun file ->
      let ds = Analysis.Lint.lint_file (Filename.concat (example_dir ()) file) in
      List.iter
        (fun d ->
          if d.Analysis.Lint.severity <> Analysis.Lint.Info then
            Alcotest.failf "%s: unexpected %s" file d.Analysis.Lint.code)
        ds)
    [ "teleport.qasm"; "ghz.qasm"; "bv.qasm" ]

let test_severity_table () =
  (* one entry per code, codes ascending, MQ000 error / MQ011 info pinned *)
  let names = List.map (fun (c, _, _) -> c) Analysis.Lint.codes in
  Alcotest.(check int) "22 codes" 22 (List.length names);
  Alcotest.(check bool) "sorted" true (List.sort compare names = names);
  Alcotest.(check bool) "MQ000 is error" true
    (Analysis.Lint.severity_of_code "MQ000" = Analysis.Lint.Error);
  Alcotest.(check bool) "MQ011 is info" true
    (Analysis.Lint.severity_of_code "MQ011" = Analysis.Lint.Info)

let test_check_certify () =
  (* the MQ021 callback check: a clean certify callback yields no
     diagnostics; each reported failure becomes one Error with its
     source location and instruction index threaded through *)
  let c = Circuit.(empty 1 |> h 0) in
  Alcotest.(check int)
    "clean" 0
    (List.length (Analysis.Lint.check_certify ~certify:(fun _ -> []) c));
  match
    Analysis.Lint.check_certify
      ~certify:(fun _ -> [ ("local_equiv product differs", Some (3, 1), Some 0) ])
      c
  with
  | [ d ] ->
      Alcotest.(check string) "code" "MQ021" d.Analysis.Lint.code;
      Alcotest.(check bool)
        "error severity" true
        (d.Analysis.Lint.severity = Analysis.Lint.Error);
      Alcotest.(check bool) "loc threaded" true (d.Analysis.Lint.loc = Some (3, 1));
      Alcotest.(check bool) "instr threaded" true (d.Analysis.Lint.instr = Some 0);
      Alcotest.(check bool)
        "table severity" true
        (Analysis.Lint.severity_of_code "MQ021" = Analysis.Lint.Error)
  | ds -> Alcotest.failf "expected one MQ021 diagnostic, got %d" (List.length ds)

let test_first_tracepoint_exempt () =
  (* a leading tracepoint on untouched qubits is the input-pragma idiom *)
  let ds = Analysis.Lint.lint_qasm "qreg q[2];\nT 1 q[0];\nh q[0];\nT 2 q[0];" in
  Alcotest.(check bool) "no MQ012" false (has_code "MQ012" ds)

let test_lint_pp () =
  let d = find_code "pp" "MQ001" (Analysis.Lint.lint_qasm "qreg q[1];\nh q[3];") in
  Alcotest.(check string) "rendered"
    "prog.qasm:2:1: error[MQ001]: Circuit: qubit 3 out of range (register has 1)"
    (Format.asprintf "%a" (Analysis.Lint.pp ~file:"prog.qasm") d)

(* ------------------------- lightcone analysis ------------------------- *)

let test_lightcone_excludes_spectator () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> x 2 |> tracepoint 1 [ 0; 1 ]) in
  match Analysis.Lightcone.cone_of_tracepoint c ~id:1 with
  | None -> Alcotest.fail "missing cone"
  | Some cone ->
      Alcotest.(check (list int)) "cone qubits" [ 0; 1 ] cone.Analysis.Lightcone.qubits;
      Alcotest.(check (array bool)) "keep" [| true; true; false; false |]
        cone.Analysis.Lightcone.keep

let test_lightcone_reset_severs () =
  (* the h on q0 happens before the reset, so it cannot influence T 1 *)
  let c = Circuit.(empty 2 |> h 0 |> reset 0 |> cx 0 1 |> tracepoint 1 [ 1 ]) in
  match Analysis.Lightcone.cone_of_tracepoint c ~id:1 with
  | None -> Alcotest.fail "missing cone"
  | Some cone ->
      Alcotest.(check (list int)) "cone qubits" [ 0; 1 ] cone.Analysis.Lightcone.qubits;
      Alcotest.(check (array bool)) "keep" [| false; true; true; false |]
        cone.Analysis.Lightcone.keep

let test_lightcone_feedback () =
  (* feedback pulls in the measurement that wrote the condition bit, and
     through it the gates on the measured qubit *)
  let corr = Circuit.Gate.make "x" [ 1 ] in
  let c =
    Circuit.(
      empty ~clbits:1 2 |> h 0 |> measure 0 0 |> if_gate [ 0 ] 1 corr
      |> tracepoint 1 [ 1 ])
  in
  match Analysis.Lightcone.cone_of_tracepoint c ~id:1 with
  | None -> Alcotest.fail "missing cone"
  | Some cone ->
      Alcotest.(check (list int)) "cone qubits" [ 0; 1 ] cone.Analysis.Lightcone.qubits

let test_prune_drops_spectator () =
  let c = Circuit.(empty 3 |> h 0 |> cx 0 1 |> x 2 |> tracepoint 1 [ 0; 1 ]) in
  let pruned = Transpile.Passes.prune_lightcone c in
  Alcotest.(check int) "gates" 2 (Circuit.gate_count pruned);
  Alcotest.(check int) "tracepoints kept" 1
    (List.length (Circuit.tracepoints pruned))

(* --------------------- Clifford classification ------------------------ *)

let test_classify () =
  let open Analysis.Classify in
  Alcotest.(check bool) "ghz clifford" true
    (circuit Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2) = Clifford);
  Alcotest.(check bool) "one t gate" true
    (circuit Circuit.(empty 1 |> h 0 |> t_gate 0) = Near_clifford 1);
  Alcotest.(check bool) "feedback body counts" true
    (circuit
       Circuit.(
         empty ~clbits:1 1 |> measure 0 0
         |> if_gate [ 0 ] 1 (Circuit.Gate.make ~params:[ 0.3 ] "rz" [ 0 ]))
    = Near_clifford 1);
  Alcotest.(check bool) "cutoff to general" true
    (circuit ~cutoff:2
       Circuit.(empty 1 |> t_gate 0 |> t_gate 0 |> t_gate 0)
    = General)

(* classification must agree with the tableau's dispatch: a gate classified
   Clifford always executes on the tableau, a non-Clifford one never does *)
let gate_corpus =
  List.map
    (fun (name, params, controls, targets) ->
      Circuit.Gate.make ~params ~controls name targets)
    [
      ("h", [], [], [ 0 ]);
      ("s", [], [], [ 1 ]);
      ("sdg", [], [], [ 0 ]);
      ("x", [], [], [ 0 ]);
      ("y", [], [], [ 1 ]);
      ("z", [], [], [ 0 ]);
      ("id", [], [], [ 0 ]);
      ("x", [], [ 0 ], [ 1 ]);
      ("z", [], [ 1 ], [ 0 ]);
      ("swap", [], [], [ 0; 1 ]);
      ("t", [], [], [ 0 ]);
      ("tdg", [], [], [ 0 ]);
      ("sx", [], [], [ 0 ]);
      ("rx", [ 0.25 ], [], [ 0 ]);
      ("rz", [ 1.5 ], [], [ 1 ]);
      ("p", [ 0.75 ], [], [ 0 ]);
      ("y", [], [ 0 ], [ 1 ]);
      ("s", [], [ 0 ], [ 1 ]);
      ("x", [], [ 0; 1 ], [ 2 ]);
      ("swap", [], [ 0 ], [ 1; 2 ]);
    ]

let test_classify_matches_tableau () =
  List.iter
    (fun g ->
      let tableau_accepts =
        match Stabilizer.Tableau.apply_gate g (Stabilizer.Tableau.make 3) with
        | () -> true
        | exception Invalid_argument _ -> false
      in
      Alcotest.(check bool)
        (Format.asprintf "dispatch agreement for %s" g.Circuit.Gate.name)
        tableau_accepts
        (Analysis.Classify.gate_is_clifford g))
    gate_corpus

(* ------------------------- classical dataflow ------------------------- *)

let test_dataflow () =
  let corr = Circuit.Gate.make "x" [ 1 ] in
  let c =
    Circuit.(
      empty ~clbits:2 2 |> if_gate [ 1 ] 1 corr |> measure 0 0 |> measure 1 0
      |> if_gate [ 0 ] 1 corr)
  in
  let r = Analysis.Dataflow.clbits c in
  Alcotest.(check (list (pair int (list int))))
    "unwritten reads" [ (0, [ 1 ]) ] r.Analysis.Dataflow.unwritten_reads;
  Alcotest.(check (list (pair int int)))
    "dead writes" [ (1, 0) ] r.Analysis.Dataflow.dead_writes

(* -------------------- engine routing unit tests ----------------------- *)

let test_stabilizer_engine_matches () =
  let c =
    Circuit.(
      empty 4 |> h 0 |> cx 0 1 |> cx 1 2 |> tracepoint 1 [ 0; 2 ]
      |> s 2 |> tracepoint 2 [ 2; 3 ])
  in
  Alcotest.(check bool) "applicable" true (Sim.Engine.stabilizer_applicable c);
  let auto = Sim.Engine.tracepoint_states c in
  let sv = Sim.Engine.tracepoint_states ~engine:`Statevec c in
  Alcotest.(check bool) "auto = statevec" true (Oracle.traces_match auto sv)

let test_stabilizer_engine_rejects () =
  let c = Circuit.(empty 1 |> t_gate 0 |> tracepoint 1 [ 0 ]) in
  Alcotest.(check bool) "not applicable" false
    (Sim.Engine.stabilizer_applicable c);
  match Sim.Engine.tracepoint_states ~engine:`Stabilizer c with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --------------------------- QCheck properties ------------------------ *)

let prop_prune_preserves =
  QCheck.Test.make ~name:"prune_lightcone preserves tracepoint states (pure)"
    ~count (Gen.pure ()) Oracle.prune_preserves_traces

let prop_prune_idempotent =
  QCheck.Test.make ~name:"prune_lightcone idempotent (programs)" ~count
    (Gen.program ()) Oracle.prune_idempotent

let prop_restrict_matches =
  QCheck.Test.make ~name:"lightcone restrict reproduces traces (pure)" ~count
    (Gen.pure ()) Oracle.lightcone_restrict_matches

let prop_stabilizer_traces =
  QCheck.Test.make ~name:"stabilizer_traces ~ statevec (clifford)" ~count
    (Gen.clifford ()) Oracle.stabilizer_traces_agree

let prop_classify_clifford_gen =
  QCheck.Test.make ~name:"clifford generator classifies Clifford" ~count
    (Gen.clifford ())
    (fun circ ->
      Analysis.Classify.circuit (Gen.build circ) = Analysis.Classify.Clifford)

(* the pinned auto-routing regressions are comparatively expensive
   (4 characterizations per case), so they run fewer cases *)
let char_count = max 10 (count / 4)

let prop_auto_unchanged =
  QCheck.Test.make
    ~name:"characterize `Auto bitwise = `Batched off the stabilizer route"
    ~count:char_count (Gen.program ())
    (fun c -> Oracle.characterize_auto_unchanged c)

let prop_auto_unchanged_basis =
  QCheck.Test.make
    ~name:"characterize `Auto bitwise = `Batched (basis kind, non-Clifford)"
    ~count:char_count (Gen.program ())
    (fun c -> Oracle.characterize_auto_unchanged ~kind:Clifford.Sampling.Basis c)

let prop_stabilizer_route =
  QCheck.Test.make
    ~name:"characterize stabilizer route ~ sequential (clifford, basis)"
    ~count:char_count (Gen.clifford ())
    (fun c -> Oracle.characterize_stabilizer_route c)

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "golden corpus" `Quick test_golden_corpus;
          Alcotest.test_case "examples clean" `Quick test_examples_clean;
          Alcotest.test_case "severity table" `Quick test_severity_table;
          Alcotest.test_case "MQ021 certify callback" `Quick test_check_certify;
          Alcotest.test_case "first tracepoint exempt" `Quick
            test_first_tracepoint_exempt;
          Alcotest.test_case "pp format" `Quick test_lint_pp;
        ] );
      ( "lightcone",
        [
          Alcotest.test_case "excludes spectator" `Quick
            test_lightcone_excludes_spectator;
          Alcotest.test_case "reset severs" `Quick test_lightcone_reset_severs;
          Alcotest.test_case "feedback" `Quick test_lightcone_feedback;
          Alcotest.test_case "prune drops spectator" `Quick
            test_prune_drops_spectator;
        ] );
      ( "classify",
        [
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "matches tableau dispatch" `Quick
            test_classify_matches_tableau;
        ] );
      ("dataflow", [ Alcotest.test_case "def/use" `Quick test_dataflow ]);
      ( "engine",
        [
          Alcotest.test_case "stabilizer matches statevec" `Quick
            test_stabilizer_engine_matches;
          Alcotest.test_case "stabilizer rejects non-clifford" `Quick
            test_stabilizer_engine_rejects;
        ] );
      ( "properties",
        List.map qtest
          [
            prop_prune_preserves;
            prop_prune_idempotent;
            prop_restrict_matches;
            prop_stabilizer_traces;
            prop_classify_clifford_gen;
            prop_auto_unchanged;
            prop_auto_unchanged_basis;
            prop_stabilizer_route;
          ] );
    ]
