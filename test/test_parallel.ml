(* The deterministic-parallelism contract: under a fixed seed, every parallel
   fan-out (trajectories, sample counts, characterization, state-vector
   kernels) must produce results BIT-IDENTICAL to the sequential path for any
   domain count. Plus pool mechanics and the gate-fusion property. *)

open Linalg

let with_pool d f =
  let pool = Parallel.Pool.create ~domains:d () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let frob_diff a b = Cmat.frob_norm (Cmat.sub a b)

let check_traces_identical msg a b =
  Alcotest.(check int) (msg ^ ": trace count") (List.length a) (List.length b);
  List.iter2
    (fun (ia, ma) (ib, mb) ->
      Alcotest.(check int) (msg ^ ": trace id") ia ib;
      if frob_diff ma mb <> 0. then
        Alcotest.failf "%s: tracepoint %d differs (frob %.3g)" msg ia
          (frob_diff ma mb))
    a b

(* ---------------- Pool mechanics ---------------- *)

let test_pool_map_init () =
  with_pool 4 (fun pool ->
      let out = Parallel.Pool.map_init pool 1000 (fun i -> i * i) in
      Alcotest.(check int) "length" 1000 (Array.length out);
      Array.iteri
        (fun i v -> if v <> i * i then Alcotest.failf "slot %d wrong" i)
        out)

let test_pool_parallel_for_covers () =
  with_pool 4 (fun pool ->
      let hits = Array.make 257 0 in
      (* 257 is deliberately not a multiple of any chunk size *)
      Parallel.Pool.parallel_for ~chunk:16 pool ~n:257 (fun i ->
          hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h ->
          if h <> 1 then Alcotest.failf "index %d ran %d times" i h)
        hits)

let test_pool_chunks_partition () =
  with_pool 3 (fun pool ->
      let seen = Array.make 1000 0 in
      Parallel.Pool.parallel_for_chunks ~chunk:64 pool ~n:1000 (fun lo hi ->
          if lo < 0 || hi > 1000 || lo >= hi then
            Alcotest.failf "bad range %d..%d" lo hi;
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Array.iteri
        (fun i h ->
          if h <> 1 then Alcotest.failf "index %d covered %d times" i h)
        seen)

let test_pool_exception_propagates () =
  with_pool 4 (fun pool ->
      match
        Parallel.Pool.parallel_for pool ~n:100 (fun i ->
            if i = 37 then failwith "boom")
      with
      | () -> Alcotest.fail "exception was swallowed"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m)

let test_pool_nested_is_safe () =
  (* a parallel_for from inside a worker of the same pool must inline *)
  with_pool 4 (fun pool ->
      let total = Atomic.make 0 in
      Parallel.Pool.parallel_for pool ~n:8 (fun _ ->
          Parallel.Pool.parallel_for pool ~n:8 (fun _ ->
              Atomic.incr total));
      Alcotest.(check int) "all nested ran" 64 (Atomic.get total))

let test_pool_sequential_pool () =
  with_pool 1 (fun pool ->
      let out = Parallel.Pool.map_init pool 10 (fun i -> i + 1) in
      Alcotest.(check int) "last" 10 out.(9))

(* ---------------- Rng.split ---------------- *)

let test_split_reproducible () =
  let stream r = Array.init 8 (fun _ -> Stats.Rng.float r 1.) in
  let children seed =
    let r = Stats.Rng.make seed in
    Array.init 4 (Stats.Rng.split r) |> Array.map stream
  in
  let a = children 42 and b = children 42 in
  if a <> b then Alcotest.fail "same seed must give identical children";
  (* distinct indices give distinct streams *)
  let r = Stats.Rng.make 42 in
  let cs = Array.init 4 (Stats.Rng.split r) |> Array.map stream in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      if cs.(i) = cs.(j) then Alcotest.failf "children %d and %d collide" i j
    done
  done

(* ---------------- Engine determinism across domain counts ------------- *)

let nondet_circuit () =
  Circuit.(
    empty ~clbits:1 3 |> h 0 |> cx 0 1 |> ry 0.7 2
    |> tracepoint 1 [ 0; 2 ]
    |> measure 0 0 |> cx 1 2
    |> tracepoint 2 [ 1; 2 ])

let noise () = Sim.Noise.make ~p1:0.02 ~p2:0.05 ~readout:0.01 ()

let test_tracepoints_domain_independent () =
  let run d =
    with_pool d (fun pool ->
        Sim.Engine.tracepoint_states ~pool ~rng:(Stats.Rng.make 99)
          ~noise:(noise ()) ~trajectories:24 (nondet_circuit ()))
  in
  let t1 = run 1 in
  check_traces_identical "1 vs 2 domains" t1 (run 2);
  check_traces_identical "1 vs 4 domains" t1 (run 4)

let test_sample_counts_domain_independent_noisy () =
  let run d =
    with_pool d (fun pool ->
        Sim.Engine.sample_counts ~pool ~rng:(Stats.Rng.make 5)
          ~noise:(noise ()) ~shots:300 (nondet_circuit ()))
  in
  let c1 = run 1 in
  Alcotest.(check (list (pair int int))) "1 vs 2 domains" c1 (run 2);
  Alcotest.(check (list (pair int int))) "1 vs 4 domains" c1 (run 4)

let test_sample_counts_domain_independent_det () =
  (* deterministic circuit: the CDF block-sampling path *)
  let c = Benchmarks.Ghz.circuit 4 in
  let run d =
    with_pool d (fun pool ->
        Sim.Engine.sample_counts ~pool ~rng:(Stats.Rng.make 5) ~shots:9000 c)
  in
  let c1 = run 1 in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 c1 in
  Alcotest.(check int) "total shots" 9000 total;
  Alcotest.(check (list (pair int int))) "1 vs 2 domains" c1 (run 2);
  Alcotest.(check (list (pair int int))) "1 vs 4 domains" c1 (run 4)

let test_trajectory_meter_merged () =
  (* per-trajectory meters must merge to the sequential totals *)
  let totals d =
    with_pool d (fun pool ->
        let m = Sim.Cost.create () in
        ignore
          (Sim.Engine.tracepoint_states ~pool ~rng:(Stats.Rng.make 3)
             ~noise:(noise ()) ~trajectories:10 ~meter:m (nondet_circuit ()));
        (m.Sim.Cost.executions, m.Sim.Cost.shots, m.Sim.Cost.gate_ops))
  in
  let t1 = totals 1 in
  Alcotest.(check (triple int int int)) "1 vs 4 domains" t1 (totals 4)

(* ---------------- Characterize determinism ---------------- *)

let lock_program () =
  let lock = Benchmarks.Quantum_lock.make ~key:1 3 in
  Morphcore.Program.make ~input_qubits:lock.Benchmarks.Quantum_lock.key_qubits
    lock.Benchmarks.Quantum_lock.circuit

let test_characterize_domain_independent () =
  let open Morphcore in
  let run d =
    with_pool d (fun pool ->
        Characterize.run ~pool ~rng:(Stats.Rng.make 17)
          ~mode:(Characterize.Tomography { shots = 64; project = false })
          ~noise:(noise ()) ~trajectories:8 (lock_program ()) ~count:6)
  in
  let a = run 1 and b = run 2 and c = run 4 in
  List.iter
    (fun other ->
      Alcotest.(check int) "sample count"
        (Array.length a.Characterize.samples)
        (Array.length other.Characterize.samples);
      Array.iteri
        (fun i sa ->
          let sb = other.Characterize.samples.(i) in
          check_traces_identical
            (Printf.sprintf "sample %d" i)
            sa.Characterize.traces sb.Characterize.traces;
          if frob_diff sa.Characterize.input_dm sb.Characterize.input_dm <> 0.
          then Alcotest.failf "sample %d input differs" i)
        a.Characterize.samples;
      Alcotest.(check int) "cost executions"
        a.Characterize.cost.Sim.Cost.executions
        other.Characterize.cost.Sim.Cost.executions;
      Alcotest.(check int) "cost shots" a.Characterize.cost.Sim.Cost.shots
        other.Characterize.cost.Sim.Cost.shots;
      Alcotest.(check int) "cost gate ops"
        a.Characterize.cost.Sim.Cost.gate_ops
        other.Characterize.cost.Sim.Cost.gate_ops)
    [ b; c ]

(* ---------------- State-vector kernels ---------------- *)

let random_gates rng n count =
  List.init count (fun _ ->
      match Stats.Rng.int rng 5 with
      | 0 -> `One (Qstate.Gates.h, Stats.Rng.int rng n)
      | 1 -> `One (Qstate.Gates.rx (Stats.Rng.uniform rng (-3.) 3.), Stats.Rng.int rng n)
      | 2 -> `One (Qstate.Gates.t, Stats.Rng.int rng n)
      | 3 ->
          let a = Stats.Rng.int rng n in
          `Ctl (Qstate.Gates.x, a, (a + 1) mod n)
      | _ ->
          let a = Stats.Rng.int rng n in
          `Two (a, (a + 1) mod n))

let swap_matrix =
  Cmat.init 4 4 (fun i j ->
      let swapped = ((j land 1) lsl 1) lor ((j lsr 1) land 1) in
      if i = swapped then Cx.one else Cx.zero)

let apply_all gates st =
  List.iter
    (fun g ->
      match g with
      | `One (u, q) -> Qstate.Statevec.apply1 u q st
      | `Ctl (u, c, t) -> if c <> t then Qstate.Statevec.apply_controlled ~controls:[ c ] u t st
      | `Two (a, b) -> if a <> b then Qstate.Statevec.apply2 swap_matrix a b st)
    gates

let test_kernels_parallel_bit_identical () =
  (* force the chunked parallel path by dropping the threshold to 0 and
     giving the global pool 4 domains; compare against the sequential path *)
  let n = 7 in
  let gates = random_gates (Stats.Rng.make 31337) n 60 in
  let input =
    let st = Qstate.Statevec.zero n in
    Qstate.Statevec.apply1 Qstate.Gates.h 3 st;
    Qstate.Statevec.apply1 (Qstate.Gates.ry 0.4) 5 st;
    st
  in
  let saved = !Qstate.Statevec.parallel_threshold in
  Fun.protect
    ~finally:(fun () ->
      Qstate.Statevec.parallel_threshold := saved;
      Parallel.Pool.set_global_domains 1)
    (fun () ->
      Qstate.Statevec.parallel_threshold := max_int;
      let seq = Qstate.Statevec.copy input in
      apply_all gates seq;
      Parallel.Pool.set_global_domains 4;
      Qstate.Statevec.parallel_threshold := 0;
      let par = Qstate.Statevec.copy input in
      apply_all gates par;
      if not (Qstate.Statevec.equal ~eps:0. seq par) then
        Alcotest.fail "parallel kernels diverged from sequential")

let test_unitary_pool_independent () =
  let c = Benchmarks.Qft.circuit 8 in
  let u1 = with_pool 1 (fun pool -> Sim.Engine.unitary ~pool c) in
  let u4 = with_pool 4 (fun pool -> Sim.Engine.unitary ~pool c) in
  if frob_diff u1 u4 <> 0. then Alcotest.fail "unitary differs across pools"

(* ---------------- counts: CDF sampling ---------------- *)

let test_counts_peaked () =
  let st = Qstate.Statevec.basis 5 13 in
  let counts = Qstate.Statevec.counts (Stats.Rng.make 1) st ~shots:500 in
  Alcotest.(check (list (pair int int))) "all mass on 13" [ (13, 500) ] counts

let test_counts_balanced () =
  let st = Qstate.Statevec.zero 1 in
  Qstate.Statevec.apply1 Qstate.Gates.h 0 st;
  let counts = Qstate.Statevec.counts (Stats.Rng.make 2) st ~shots:10000 in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Alcotest.(check int) "total" 10000 total;
  List.iter
    (fun (_, n) ->
      if abs (n - 5000) > 300 then Alcotest.failf "unbalanced: %d" n)
    counts

(* ---------------- gate fusion ---------------- *)

let test_fusion_collapses_run () =
  let c = Circuit.(empty 2 |> h 0 |> t_gate 0 |> x 1 |> s 0 |> cx 0 1) in
  let c' = Transpile.Passes.fuse_1q c in
  (* h,t,s on wire 0 fuse into one u2x2; x on wire 1 and the cx remain *)
  Alcotest.(check int) "gate count" 3 (Circuit.gate_count c');
  if frob_diff (Sim.Engine.unitary c) (Sim.Engine.unitary c') > 1e-12 then
    Alcotest.fail "fusion changed the unitary"

let test_fusion_fenced_by_tracepoint () =
  let c = Circuit.(empty 1 |> h 0 |> tracepoint 1 [ 0 ] |> h 0) in
  Alcotest.(check int) "kept" 2 (Circuit.gate_count (Transpile.Passes.fuse_1q c))

(* Random circuits come from the shared testkit generator (shrinking
   included); failures print mini-QASM plus a repro command. *)
let prop_fusion_preserves_unitary =
  QCheck.Test.make ~name:"fuse_1q preserves unitary" ~count:40
    (Testkit.Gen.pure ~max_qubits:3 ())
    (fun circ ->
      let c = Testkit.Gen.build circ in
      let fused = Transpile.Passes.fuse_1q c in
      Circuit.gate_count fused <= Circuit.gate_count c
      && frob_diff (Sim.Engine.unitary c) (Sim.Engine.unitary fused) <= 1e-9)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_init" `Quick test_pool_map_init;
          Alcotest.test_case "parallel_for covers" `Quick test_pool_parallel_for_covers;
          Alcotest.test_case "chunks partition" `Quick test_pool_chunks_partition;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "nested is safe" `Quick test_pool_nested_is_safe;
          Alcotest.test_case "single-domain pool" `Quick test_pool_sequential_pool;
        ] );
      ( "rng",
        [ Alcotest.test_case "split reproducible" `Quick test_split_reproducible ] );
      ( "determinism",
        [
          Alcotest.test_case "tracepoints 1/2/4 domains" `Quick
            test_tracepoints_domain_independent;
          Alcotest.test_case "sample_counts noisy 1/2/4" `Quick
            test_sample_counts_domain_independent_noisy;
          Alcotest.test_case "sample_counts det 1/2/4" `Quick
            test_sample_counts_domain_independent_det;
          Alcotest.test_case "meter merge" `Quick test_trajectory_meter_merged;
          Alcotest.test_case "characterize 1/2/4" `Quick
            test_characterize_domain_independent;
          Alcotest.test_case "statevec kernels" `Quick
            test_kernels_parallel_bit_identical;
          Alcotest.test_case "unitary" `Quick test_unitary_pool_independent;
        ] );
      ( "counts",
        [
          Alcotest.test_case "peaked" `Quick test_counts_peaked;
          Alcotest.test_case "balanced" `Quick test_counts_balanced;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "collapses run" `Quick test_fusion_collapses_run;
          Alcotest.test_case "fenced by tracepoint" `Quick
            test_fusion_fenced_by_tracepoint;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_fusion_preserves_unitary ] );
    ]
