(* Segment compiler + batched execution engine (DESIGN.md §9).

   Property layer: the compiled/batched path against the gate-by-gate
   engine (1e-9, clbits exact), the batch determinism contract (packed run
   bit-identical to per-column runs), and Characterize's engines against
   each other. Unit layer: fusion counts on the fig5 teleport workload,
   cutoff edge cases, domain-count invariance, and the broken-fence
   shrinker smoke check. *)

open Testkit

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

(* ---------------- properties ---------------- *)

let prop_batch_vs_engine_pure =
  QCheck.Test.make ~name:"batch ~ engine (pure)" ~count (Gen.pure ())
    Oracle.batch_vs_engine

let prop_batch_vs_engine_clifford =
  QCheck.Test.make ~name:"batch ~ engine (clifford)" ~count (Gen.clifford ())
    Oracle.batch_vs_engine

let prop_batch_vs_engine_program =
  QCheck.Test.make ~name:"batch ~ engine (programs)" ~count (Gen.program ())
    Oracle.batch_vs_engine

let prop_batch_vs_engine_packed =
  QCheck.Test.make ~name:"batch ~ engine (tiny cutoffs force packing)" ~count
    (Gen.program ())
    Oracle.batch_vs_engine_packed

let prop_batch_bit_identical =
  QCheck.Test.make ~name:"packed batch bit-identical to per-column runs"
    ~count (Gen.program ())
    Oracle.batch_bit_identical

let prop_characterize_engines =
  (* each case runs two full characterizations with trajectories: keep the
     circuits small and the case count moderate *)
  QCheck.Test.make ~name:"characterize batched ~ sequential"
    ~count:(max 10 (count / 5))
    (Gen.program ~max_qubits:3 ())
    Oracle.characterize_engines_agree

(* ---------------- shrinker smoke check ----------------

   Delay every tracepoint fence past the following operator — a broken
   segmentation — and demand the QCheck shrinker walks the failure down to
   the minimal counterexample: a tracepoint followed by one state-changing
   gate on a single qubit. *)

let test_broken_fence_shrinks () =
  let cell =
    QCheck.Test.make_cell ~name:"deliberately broken segment fence" ~count:500
      (Gen.pure ())
      Oracle.batch_fence_respected
  in
  let result = QCheck.Test.check_cell ~rand:(Config.rand ()) cell in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = { instance; shrink_steps; _ } :: _ }
    ->
      let c = Gen.build instance in
      if shrink_steps = 0 then
        Alcotest.fail "counterexample was reported without any shrinking";
      Alcotest.(check int) "shrunk to one qubit" 1 (Circuit.num_qubits c);
      Alcotest.(check int) "shrunk to a single gate" 1 (Circuit.gate_count c);
      (match Circuit.instrs c with
      | [ Circuit.Instr.Tracepoint _; Circuit.Instr.Gate _ ] -> ()
      | _ ->
          Alcotest.failf "expected [tracepoint; gate], got:\n%s"
            (Gen.print_circ instance))
  | _ -> Alcotest.fail "broken segment fence was not caught at all"

(* ---------------- unit tests ---------------- *)

let check_float ~eps msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* fig5 workload: 3-qubit payload teleportation = 12 unitary gates between
   feedback fences, fused into 3 per-hop blocks — a 4x reduction in
   operator applications per sample *)
let test_teleport_fusion_counts () =
  let c = Benchmarks.Teleport.multi 3 in
  let plan = Transpile.Segments.compile c in
  Alcotest.(check int) "source gate applications" 12
    plan.Sim.Batch.source_ops;
  Alcotest.(check int) "fused operator applications" 3 (Sim.Batch.ops plan);
  if plan.Sim.Batch.source_ops < 2 * Sim.Batch.ops plan then
    Alcotest.fail "fig5 fusion ratio below 2x"

let ghz n =
  List.fold_left
    (fun c q -> Circuit.cx q (q + 1) c)
    (Circuit.(empty n |> h 0))
    (List.init (n - 1) (fun q -> q))

let test_cutoff_extremes () =
  let c = Circuit.tracepoint 1 [ 0; 1; 2 ] (ghz 3) in
  List.iter
    (fun (cutoff, block_cutoff) ->
      let plan = Transpile.Segments.compile ~cutoff ~block_cutoff c in
      let eng = Sim.Engine.run c in
      let bat = Sim.Batch.run_seq plan (Qstate.Statevec.zero 3) in
      if not (Qstate.Statevec.equal ~eps:1e-12 eng.Sim.Engine.state bat.Sim.Engine.state)
      then Alcotest.failf "cutoff %d/%d: final state mismatch" cutoff block_cutoff;
      if not (Oracle.traces_match eng.Sim.Engine.traces bat.Sim.Engine.traces)
      then Alcotest.failf "cutoff %d/%d: trace mismatch" cutoff block_cutoff)
    [ (1, 1); (2, 2); (6, 3); (26, 26) ];
  (* cutoff 1 + block_cutoff 1 cannot fuse across the cx gates: the h
     becomes a 1q block and each cx a Direct item *)
  let plan = Transpile.Segments.compile ~cutoff:1 ~block_cutoff:1 c in
  Alcotest.(check int) "no fusion at cutoff 1" 3 (Sim.Batch.ops plan)

let test_direct_wide_gate () =
  (* a 4-control Toffoli exceeds block_cutoff: compiled as a Direct item,
     and still agrees with the engine *)
  let c =
    Circuit.(
      empty 5 |> h 0 |> h 1 |> h 2 |> h 3 |> mcx [ 0; 1; 2; 3 ] 4
      |> tracepoint 1 [ 4 ])
  in
  let plan = Transpile.Segments.compile ~cutoff:3 ~block_cutoff:3 c in
  let has_direct =
    List.exists
      (function Sim.Batch.Direct _ -> true | _ -> false)
      plan.Sim.Batch.items
  in
  Alcotest.(check bool) "wide gate stays direct" true has_direct;
  let eng = Sim.Engine.run c in
  let bat = Sim.Batch.run_seq plan (Qstate.Statevec.zero 5) in
  Alcotest.(check bool) "traces agree" true
    (Oracle.traces_match eng.Sim.Engine.traces bat.Sim.Engine.traces)

let test_domain_count_invariance () =
  (* the stochastic teleport workload, batch-executed under 1, 2 and 4
     domains: outcomes must be bit-identical *)
  let plan = Transpile.Segments.compile (Benchmarks.Teleport.multi 2) in
  let cols = 9 in
  let states =
    Array.init cols (fun i ->
        let rng = Stats.Rng.make (300 + i) in
        let d = 1 lsl 6 in
        let re = Array.init d (fun _ -> Stats.Rng.float rng 2. -. 1.) in
        let im = Array.init d (fun _ -> Stats.Rng.float rng 2. -. 1.) in
        let st = Qstate.Statevec.of_cvec 6 (Linalg.Cvec.of_arrays re im) in
        Qstate.Statevec.normalize st;
        st)
  in
  let run domains =
    let pool = Parallel.Pool.create ~domains () in
    let rngs = Array.init cols (fun i -> Stats.Rng.make (900 + i)) in
    let out = Sim.Batch.run ~pool ~rngs plan states in
    Parallel.Pool.shutdown pool;
    out
  in
  let reference = run 1 in
  List.iter
    (fun domains ->
      let out = run domains in
      Array.iteri
        (fun i (o : Sim.Engine.outcome) ->
          let r = reference.(i) in
          if
            o.Sim.Engine.clbits <> r.Sim.Engine.clbits
            || o.Sim.Engine.state.Qstate.Statevec.re
               <> r.Sim.Engine.state.Qstate.Statevec.re
            || o.Sim.Engine.state.Qstate.Statevec.im
               <> r.Sim.Engine.state.Qstate.Statevec.im
          then Alcotest.failf "domains=%d: column %d diverged" domains i)
        out)
    [ 2; 4 ]

let test_trace_only_circuit () =
  let c = Circuit.(empty 2 |> tracepoint 1 [ 0; 1 ]) in
  let plan = Transpile.Segments.compile c in
  Alcotest.(check int) "no operators" 0 (Sim.Batch.ops plan);
  let traces =
    Sim.Batch.run_traces plan ~count:3 ~init:(fun i ->
        Qstate.Statevec.basis 2 i)
  in
  Array.iteri
    (fun i trace ->
      match trace with
      | [ (1, rho) ] ->
          check_float ~eps:1e-12 "basis diagonal" 1.
            (Linalg.Cx.re (Linalg.Cmat.get rho i i))
      | _ -> Alcotest.fail "expected exactly tracepoint 1")
    traces

let test_batched_rejects_noise () =
  let program = Morphcore.Program.make (ghz 2) in
  Alcotest.check_raises "batched engine requires ideal noise"
    (Invalid_argument "Characterize.run: batched engine requires ideal noise")
    (fun () ->
      ignore
        (Morphcore.Characterize.run ~engine:`Batched
           ~noise:(Sim.Noise.make ~p1:0.01 ()) program ~count:2))

let test_probe_accuracies_batched () =
  (* deterministic program: probe_accuracies takes the segment-compiled
     batch path; it must reproduce the interleaved sequential computation
     (same generator stream, truths within fusion rounding) *)
  let c = Circuit.tracepoint 1 [ 0; 1; 2 ] (ghz 3) in
  let program = Morphcore.Program.make c in
  let ch =
    Morphcore.Characterize.run ~rng:(Stats.Rng.make 5) ~kind:Haar program
      ~count:12
  in
  let approx = Morphcore.Approx.of_characterization ch in
  let accs =
    Morphcore.Verify.probe_accuracies ~rng:(Stats.Rng.make 6) ~count:5 approx
      program ~tracepoint:1
  in
  Alcotest.(check int) "probe count" 5 (Array.length accs);
  let rng = Stats.Rng.make 6 in
  let expected =
    Array.init 5 (fun _ ->
        let input = Clifford.Sampling.haar_state rng 3 in
        let truth =
          List.assoc 1 (Morphcore.Program.run_traces ~rng program ~input)
        in
        let v = Qstate.Statevec.to_cvec input in
        Morphcore.Approx.accuracy
          (Morphcore.Approx.state_at approx ~tracepoint:1
             (Linalg.Cmat.outer v v))
          truth)
  in
  Array.iteri
    (fun i a -> check_float ~eps:1e-9 "probe accuracy" expected.(i) a)
    accs

let () =
  Config.announce ~exe:"test/test_batch.exe";
  Alcotest.run "batch"
    [
      ( "properties",
        List.map qtest
          [
            prop_batch_vs_engine_pure;
            prop_batch_vs_engine_clifford;
            prop_batch_vs_engine_program;
            prop_batch_vs_engine_packed;
            prop_batch_bit_identical;
            prop_characterize_engines;
          ] );
      ( "shrinking",
        [
          ( "broken segment fence shrinks to minimal circuit",
            `Quick,
            test_broken_fence_shrinks );
        ] );
      ( "units",
        [
          ("fig5 teleport fusion counts", `Quick, test_teleport_fusion_counts);
          ("cutoff extremes match engine", `Quick, test_cutoff_extremes);
          ("wide gate compiled as direct", `Quick, test_direct_wide_gate);
          ("domain-count invariance", `Quick, test_domain_count_invariance);
          ("trace-only circuit", `Quick, test_trace_only_circuit);
          ("batched engine rejects noise", `Quick, test_batched_rejects_noise);
          ("probe_accuracies batched path", `Quick, test_probe_accuracies_batched);
        ] );
    ]
