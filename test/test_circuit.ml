let ghz3 () = Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2)

let test_builder_counts () =
  let c = ghz3 () in
  Alcotest.(check int) "gate count" 3 (Circuit.gate_count c);
  Alcotest.(check int) "two qubit" 2 (Circuit.two_qubit_count c);
  Alcotest.(check int) "depth" 3 (Circuit.depth c);
  Alcotest.(check int) "qubits" 3 (Circuit.num_qubits c)

let test_tracepoints () =
  let c =
    Circuit.(empty 2 |> tracepoint 1 [ 0; 1 ] |> h 0 |> tracepoint 2 [ 1 ])
  in
  Alcotest.(check (list (pair int (list int))))
    "tracepoints"
    [ (1, [ 0; 1 ]); (2, [ 1 ]) ]
    (Circuit.tracepoints c)

let test_measurement_before () =
  let c =
    Circuit.(
      empty ~clbits:1 2 |> tracepoint 1 [ 0 ] |> measure 0 0 |> tracepoint 2 [ 1 ])
  in
  assert (not (Circuit.has_measurement_before c ~tracepoint_id:1));
  assert (Circuit.has_measurement_before c ~tracepoint_id:2)

let expect_error name code f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Circuit.Error %s" name code
  | exception Circuit.Error e ->
      Alcotest.(check string) (name ^ " code") code e.Circuit.code;
      if String.length e.Circuit.message = 0 then
        Alcotest.failf "%s: empty message" name

let test_validation_errors () =
  let c = Circuit.empty 2 in
  expect_error "qubit range" "MQ001" (fun () -> ignore (Circuit.h 5 c));
  expect_error "clbit range" "MQ002" (fun () ->
      ignore (Circuit.measure 0 0 c));
  expect_error "duplicate qubit" "MQ003" (fun () ->
      ignore (Circuit.cx 1 1 c));
  expect_error "register mismatch" "MQ013" (fun () ->
      ignore (Circuit.append c (Circuit.empty 3)));
  expect_error "unknown gate" "MQ015" (fun () ->
      ignore (Circuit.gate "frobnicate" [ 0 ] c));
  expect_error "empty register" "MQ016" (fun () -> ignore (Circuit.empty 0))

let test_append () =
  let a = Circuit.(empty 2 |> h 0) in
  let b = Circuit.(empty 2 |> cx 0 1) in
  let c = Circuit.append a b in
  Alcotest.(check int) "combined" 2 (Circuit.gate_count c)

let test_adjoint_inverts () =
  let c =
    Circuit.(
      empty 2 |> h 0 |> t_gate 1 |> s 0 |> rx 0.37 1 |> cx 0 1 |> u3 0.2 1.0 0.5 0
      |> p 0.9 1)
  in
  let full = Circuit.append c (Circuit.adjoint c) in
  let u = Sim.Engine.unitary full in
  if not (Linalg.Cmat.equal ~eps:1e-9 u (Linalg.Cmat.identity 4)) then
    Alcotest.fail "adjoint did not invert circuit"

let test_adjoint_rejects_measure () =
  let c = Circuit.(empty ~clbits:1 1 |> measure 0 0) in
  expect_error "non-unitary" "MQ014" (fun () -> ignore (Circuit.adjoint c))

let test_map_gates_prune () =
  let c = Circuit.(empty 2 |> rx 0.001 0 |> ry 1.0 1 |> cx 0 1) in
  let pruned =
    Circuit.map_gates
      (fun g ->
        match g.Circuit.Gate.params with
        | [ a ] when Float.abs a < 0.01 -> None
        | _ -> Some g)
      c
  in
  Alcotest.(check int) "pruned" 2 (Circuit.gate_count pruned)

let test_gate_inverse () =
  List.iter
    (fun (name, params) ->
      let g = Circuit.Gate.make ~params name [ 0 ] in
      let gi = Circuit.Gate.inverse g in
      let c = Circuit.(empty 1 |> add (Circuit.Instr.Gate g) |> add (Circuit.Instr.Gate gi)) in
      let u = Sim.Engine.unitary c in
      if not (Linalg.Cmat.equal ~eps:1e-10 u (Linalg.Cmat.identity 2)) then
        Alcotest.failf "inverse wrong for %s" name)
    [
      ("h", []); ("x", []); ("s", []); ("t", []); ("sdg", []); ("tdg", []);
      ("sx", []); ("sy", []);
      ("rx", [ 0.3 ]); ("ry", [ -0.8 ]); ("rz", [ 2.5 ]); ("p", [ 1.1 ]);
      ("u3", [ 0.3; 0.9; -0.2 ]);
      ("u2x2", [ 0.6; 0.0; 0.0; 0.8; 0.0; 0.8; 0.6; 0.0 ]);
    ]

let test_controlled_sx_inverse () =
  (* Regression (found by the differential harness): sx^dagger used to be
     implemented as rx(-pi/2), off by a global phase — harmless alone but a
     relative phase once controlled, so csx; inverse(csx) was not the
     identity. *)
  let g = Circuit.Gate.make ~controls:[ 1 ] "sx" [ 0 ] in
  let c =
    Circuit.(
      empty 2
      |> add (Circuit.Instr.Gate g)
      |> add (Circuit.Instr.Gate (Circuit.Gate.inverse g)))
  in
  let u = Sim.Engine.unitary c in
  if not (Linalg.Cmat.equal ~eps:1e-10 u (Linalg.Cmat.identity 4)) then
    Alcotest.fail "controlled-sx inverse is not exact"

let test_gate_remap () =
  let g = Circuit.Gate.make ~controls:[ 0 ] "x" [ 1 ] in
  let g' = Circuit.Gate.remap (fun q -> q + 2) g in
  Alcotest.(check (list int)) "remapped" [ 2; 3 ] (Circuit.Gate.qubits g')

let test_mcz_symmetry () =
  (* mcz is symmetric in its qubits: both orderings give the same unitary *)
  let c1 = Circuit.(empty 3 |> mcz [ 0; 1; 2 ]) in
  let c2 = Circuit.(empty 3 |> mcz [ 2; 1; 0 ]) in
  let u1 = Sim.Engine.unitary c1 and u2 = Sim.Engine.unitary c2 in
  if not (Linalg.Cmat.equal ~eps:1e-12 u1 u2) then Alcotest.fail "mcz not symmetric"

let test_depth_parallel_gates () =
  let c = Circuit.(empty 4 |> h 0 |> h 1 |> h 2 |> h 3 |> cx 0 1 |> cx 2 3) in
  Alcotest.(check int) "parallel depth" 2 (Circuit.depth c)

let () =
  Alcotest.run "circuit"
    [
      ( "builder",
        [
          Alcotest.test_case "counts" `Quick test_builder_counts;
          Alcotest.test_case "tracepoints" `Quick test_tracepoints;
          Alcotest.test_case "measurement before" `Quick test_measurement_before;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "depth parallel" `Quick test_depth_parallel_gates;
        ] );
      ( "transform",
        [
          Alcotest.test_case "adjoint inverts" `Quick test_adjoint_inverts;
          Alcotest.test_case "adjoint rejects measure" `Quick test_adjoint_rejects_measure;
          Alcotest.test_case "map_gates prune" `Quick test_map_gates_prune;
          Alcotest.test_case "gate inverse" `Quick test_gate_inverse;
          Alcotest.test_case "controlled sx inverse" `Quick
            test_controlled_sx_inverse;
          Alcotest.test_case "gate remap" `Quick test_gate_remap;
          Alcotest.test_case "mcz symmetry" `Quick test_mcz_symmetry;
        ] );
    ]
