(* Content-addressed cache + verification daemon tests (DESIGN.md §15):
   FNV golden vectors, the QCheck-pinned canonicalization invariant
   (equal unit bytes => bit-identical unit simulation), LRU/byte-bound/
   persistence behavior of the store, every memo layer (characterize
   incremental + whole-result, verdict, segments, tomography), the
   cache-transparency oracle with a persistence reload, MQ020 cone-hash
   lint, and the JSON-RPC protocol (Jsonx roundtrips, [Server.handle_line]
   unit tests, one fork-based end-to-end socket smoke). *)

open Testkit
open Morphcore

let count = Config.count ()
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Config.rand ()) t

let temp_dir () =
  let d = Filename.temp_file "morphqpv-cache" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* ------------------------------ FNV ----------------------------------- *)

(* golden vectors from the reference FNV-1a specification *)
let test_fnv_golden () =
  Alcotest.(check int64)
    "empty" 0xcbf29ce484222325L
    (Cache.Fnv.fnv1a64 "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Cache.Fnv.fnv1a64 "a");
  Alcotest.(check int)
    "hex digest width" 32
    (String.length (Cache.Fnv.hex "morphqpv"));
  Alcotest.(check bool)
    "lanes separate near-collisions" false
    (Cache.Fnv.hex "a" = Cache.Fnv.hex "b");
  Alcotest.(check bool)
    "seed non-negative" true
    (Cache.Fnv.seed_of_string "anything" >= 0)

(* ------------------------------ Canon ---------------------------------- *)

let ghz3 =
  Circuit.(empty 3 |> h 0 |> cx 0 1 |> cx 1 2 |> tracepoint 1 [ 0; 1; 2 ])

let test_canon_normalization () =
  let with_rz th =
    Circuit.(empty 1 |> rz th 0 |> tracepoint 1 [ 0 ]) |> Cache.Canon.canonical_bytes
  in
  Alcotest.(check string) "-0.0 folds to 0.0" (with_rz 0.0) (with_rz (-0.0));
  Alcotest.(check bool)
    "distinct angles distinct bytes" false
    (with_rz 0.5 = with_rz 0.25);
  let with_barrier =
    Circuit.(
      empty 3 |> h 0 |> cx 0 1 |> barrier [ 0; 1 ] |> cx 1 2
      |> tracepoint 1 [ 0; 1; 2 ])
  in
  Alcotest.(check string)
    "barriers excluded from canonical bytes"
    (Cache.Canon.canonical_bytes ghz3)
    (Cache.Canon.canonical_bytes with_barrier);
  Alcotest.(check bool)
    "barriers kept in exact bytes" false
    (Cache.Canon.exact_bytes ghz3 = Cache.Canon.exact_bytes with_barrier);
  let with_id id =
    Circuit.(empty 2 |> h 0 |> cx 0 1 |> tracepoint id [ 0; 1 ])
  in
  Alcotest.(check string)
    "tracepoint ids excluded from canonical bytes"
    (Cache.Canon.canonical_bytes (with_id 1))
    (Cache.Canon.canonical_bytes (with_id 9));
  Alcotest.(check bool)
    "tracepoint ids kept in exact bytes" false
    (Cache.Canon.exact_bytes (with_id 1) = Cache.Canon.exact_bytes (with_id 9))

(* rebuild a circuit with qubit q renamed to perm.(q) *)
let permute_qubits perm c =
  List.fold_left
    (fun acc i -> Circuit.add (Circuit.Instr.remap (fun q -> perm.(q)) i) acc)
    (Circuit.empty ~clbits:(Circuit.num_clbits c) (Circuit.num_qubits c))
    (Circuit.instrs c)

(* the pinned cache invariant: a qubit relabeling leaves every cone's
   canonical unit bytes unchanged, and simulating the relabeled unit from
   the same embedded input replays bit-identical tracepoint states *)
let prop_units_relabeling_invariant =
  QCheck.Test.make ~name:"equal unit bytes => identical unit simulation"
    ~count (Gen.pure ()) (fun sketch ->
      let c = Gen.build sketch in
      let n = Circuit.num_qubits c in
      let perm = Array.init n (fun q -> n - 1 - q) in
      let c' = permute_qubits perm c in
      let inputs = List.init n Fun.id in
      let inputs' = List.map (fun q -> perm.(q)) inputs in
      let simulate (u : Cache.Canon.unit_circuit) id =
        let st = Qstate.Statevec.zero u.Cache.Canon.width in
        (* basis input 0b01 pattern over the input qubits, via the embed *)
        let idx = ref 0 in
        Array.iteri
          (fun j uq -> if j mod 2 = 0 then idx := !idx lor (1 lsl uq))
          u.Cache.Canon.embed;
        Qstate.Statevec.set_amplitude st !idx Linalg.Cx.one;
        let out = Sim.Engine.run ~initial:st u.Cache.Canon.circuit in
        List.assoc id out.Sim.Engine.traces
      in
      List.for_all2
        (fun (cone : Analysis.Lightcone.cone)
             (cone' : Analysis.Lightcone.cone) ->
          let u = Cache.Canon.cone_unit c ~input_qubits:inputs cone in
          let u' = Cache.Canon.cone_unit c' ~input_qubits:inputs' cone' in
          u.Cache.Canon.bytes = u'.Cache.Canon.bytes
          && simulate u cone.Analysis.Lightcone.id
             = simulate u' cone'.Analysis.Lightcone.id)
        (Analysis.Lightcone.cones c)
        (Analysis.Lightcone.cones c'))

let prop_canonical_relabeling_invariant =
  QCheck.Test.make ~name:"canonical_bytes invariant under qubit relabeling"
    ~count (Gen.program ()) (fun sketch ->
      let c = Gen.build sketch in
      let n = Circuit.num_qubits c in
      let perm = Array.init n (fun q -> n - 1 - q) in
      Cache.Canon.canonical_bytes c
      = Cache.Canon.canonical_bytes (permute_qubits perm c))

(* ------------------------------ Store ---------------------------------- *)

let test_store_lru () =
  let cache = Cache.create ~max_bytes:4096 () in
  let payload = String.make 512 'x' in
  for i = 0 to 31 do
    Cache.store cache ~ns:"t" (string_of_int i) payload
  done;
  let s = Cache.stats cache in
  Alcotest.(check bool) "evictions happened" true (s.Cache.evictions > 0);
  Alcotest.(check bool) "byte budget held" true (s.Cache.bytes <= 4096);
  Alcotest.(check (option string))
    "most recent entry survives" (Some payload)
    (Cache.find cache ~ns:"t" "31");
  Alcotest.(check (option string))
    "cold end evicted" None
    (Cache.find cache ~ns:"t" "0");
  let s = Cache.stats cache in
  Alcotest.(check int) "stores counted" 32 s.Cache.stores;
  Alcotest.(check int) "hit counted" 1 s.Cache.hits;
  Alcotest.(check int) "miss counted" 1 s.Cache.misses

let test_store_namespaces () =
  let cache = Cache.create () in
  Cache.store cache ~ns:"a" "k" "va";
  Cache.store cache ~ns:"b" "k" "vb";
  Alcotest.(check (option string))
    "namespaces isolate keys" (Some "va")
    (Cache.find cache ~ns:"a" "k");
  Alcotest.(check (option string)) "" (Some "vb") (Cache.find cache ~ns:"b" "k")

let test_store_persistence () =
  let dir = temp_dir () in
  let cache = Cache.create ~dir () in
  Cache.store_value cache ~ns:"t" "key" [| 1.5; 2.5 |];
  Cache.drop_memory cache;
  Alcotest.(check bool)
    "disk tier survives drop_memory" true
    (Cache.find_value cache ~ns:"t" "key" = Some [| 1.5; 2.5 |]);
  (* a fresh store over the same directory sees the entry *)
  let reopened = Cache.create ~dir () in
  Alcotest.(check bool)
    "fresh store reads persisted entry" true
    (Cache.find_value reopened ~ns:"t" "key" = Some [| 1.5; 2.5 |]);
  (* corrupt every entry file (dir/ns/<hex>): reads must degrade to
     misses, not exceptions *)
  Array.iter
    (fun ns ->
      let nsdir = Filename.concat dir ns in
      if Sys.is_directory nsdir then
        Array.iter
          (fun f ->
            Out_channel.with_open_bin (Filename.concat nsdir f) (fun oc ->
                output_string oc "garbage"))
          (Sys.readdir nsdir))
    (Sys.readdir dir);
  let corrupted = Cache.create ~dir () in
  Alcotest.(check bool)
    "corrupt files read as misses" true
    (Cache.find_value corrupted ~ns:"t" "key" = (None : float array option))

(* --------------------------- memo layers -------------------------------- *)

let three_cone_circuit theta =
  Circuit.(
    empty 6 |> h 0 |> cx 0 1 |> rz theta 1
    |> tracepoint 1 [ 0; 1 ]
    |> h 2 |> cx 2 3 |> t_gate 3
    |> tracepoint 2 [ 2; 3 ]
    |> h 4 |> cx 4 5
    |> tracepoint 3 [ 4; 5 ])

let traces_of (ch : Characterize.t) =
  Array.map (fun s -> s.Characterize.traces) ch.Characterize.samples

let characterize ~cache theta =
  Characterize.run ~cache
    ~rng:(Stats.Rng.make 11)
    ~mode:(Characterize.Tomography { shots = 24; project = true })
    (Program.make (three_cone_circuit theta))
    ~count:3

(* the headline acceptance behavior: a warm re-verification performs zero
   simulation and zero tomography shots; an edited program re-characterizes
   only the tracepoint whose cone changed *)
let test_incremental_warm_and_edited () =
  let cache = Cache.create () in
  let cold = characterize ~cache 0.7 in
  let s_cold = Cache.stats cache in
  Alcotest.(check int) "cold: one miss per cone" 3 s_cold.Cache.misses;
  Alcotest.(check bool)
    "cold did quantum work" true
    (cold.Characterize.cost.Sim.Cost.executions > 0
    && cold.Characterize.cost.Sim.Cost.shots > 0);
  let warm = characterize ~cache 0.7 in
  let s_warm = Cache.stats cache in
  Alcotest.(check int) "warm: no new misses" s_cold.Cache.misses s_warm.Cache.misses;
  Alcotest.(check int) "warm: one hit per cone" (s_cold.Cache.hits + 3) s_warm.Cache.hits;
  Alcotest.(check int)
    "warm: zero executions" 0 warm.Characterize.cost.Sim.Cost.executions;
  Alcotest.(check int)
    "warm: zero shots" 0 warm.Characterize.cost.Sim.Cost.shots;
  Alcotest.(check bool)
    "warm traces bit-identical" true
    (traces_of cold = traces_of warm);
  let edited = characterize ~cache 1.3 in
  let s_edited = Cache.stats cache in
  Alcotest.(check int)
    "edited: exactly the changed cone misses" (s_warm.Cache.misses + 1)
    s_edited.Cache.misses;
  Alcotest.(check int)
    "edited: the two unchanged cones hit" (s_warm.Cache.hits + 2)
    s_edited.Cache.hits;
  Alcotest.(check int)
    "edited: a third of the cold executions"
    (cold.Characterize.cost.Sim.Cost.executions / 3)
    edited.Characterize.cost.Sim.Cost.executions;
  (* the unchanged cones' traces are the cached (cold) values verbatim *)
  Array.iteri
    (fun i traces ->
      Alcotest.(check bool)
        "unchanged cone trace reused" true
        (List.assoc 2 traces = List.assoc 2 (traces_of cold).(i)))
    (traces_of edited)

(* stochastic programs fall back to the whole-result memo *)
let test_whole_result_memo () =
  let c =
    Circuit.(
      empty ~clbits:1 2 |> h 0 |> cx 0 1 |> measure 0 0
      |> tracepoint 1 [ 1 ])
  in
  let cache = Cache.create () in
  let run () =
    Characterize.run ~cache
      ~rng:(Stats.Rng.make 4)
      ~trajectories:3 (Program.make c) ~count:3
  in
  let cold = run () in
  let warm = run () in
  Alcotest.(check bool)
    "whole-result hit recorded" true
    ((Cache.stats cache).Cache.hits > 0);
  Alcotest.(check int)
    "warm: zero executions" 0 warm.Characterize.cost.Sim.Cost.executions;
  Alcotest.(check bool)
    "warm samples identical" true
    (traces_of cold = traces_of warm)

let test_verdict_memo () =
  let cache = Cache.create () in
  let validate () =
    let ch = characterize ~cache:(Cache.create ()) 0.7 in
    let approx = Approx.of_characterization ch in
    let assertion =
      Assertion.make ~assumes:[]
        ~guarantees:[ Predicate.Purity_ge (3, 0.2) ]
        ()
    in
    let options =
      { Verify.default_options with budget = 100; restarts = 1; projection = `Trace }
    in
    Verify.validate ~options ~rng:(Stats.Rng.make 5) ~cache approx assertion
  in
  let cold = validate () in
  let before = Cache.stats cache in
  let warm = validate () in
  let after = Cache.stats cache in
  Alcotest.(check int) "verdict hit" (before.Cache.hits + 1) after.Cache.hits;
  Alcotest.(check bool) "verdicts identical" true (cold = warm)

let test_segments_memo () =
  let c = Gen.build (QCheck.Gen.generate1 ~rand:(Config.rand ()) (Gen.gen_pure ())) in
  let cache = Cache.create () in
  let cold = Transpile.Segments.compile ~cache c in
  let before = Cache.stats cache in
  let warm = Transpile.Segments.compile ~cache c in
  let after = Cache.stats cache in
  Alcotest.(check int) "plan hit" (before.Cache.hits + 1) after.Cache.hits;
  Alcotest.(check bool) "plans identical" true (cold = warm);
  (* a different cutoff is a different key *)
  let _ = Transpile.Segments.compile ~cutoff:2 ~cache c in
  Alcotest.(check bool)
    "cutoff in the key" true
    ((Cache.stats cache).Cache.misses > after.Cache.misses)

let test_tomo_memo () =
  let truth =
    let v = Qstate.Statevec.to_cvec (Qstate.Statevec.zero 2) in
    Linalg.Cmat.outer v v
  in
  let cache = Cache.create () in
  let run () =
    Tomography.State_tomo.run
      ~cache:(cache, "test-ctx")
      (Stats.Rng.make 9) ~shots:16 ~truth ()
  in
  let cold = run () in
  let before = Cache.stats cache in
  let warm = run () in
  Alcotest.(check int)
    "estimate hit" (before.Cache.hits + 1)
    (Cache.stats cache).Cache.hits;
  Alcotest.(check bool) "estimates identical" true (cold = warm)

(* cached and uncached paths agree bit-for-bit across cold/warm/eviction,
   and across a persistence reload *)
let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let prop_cache_transparent =
  QCheck.Test.make ~name:"cache transparency (programs)" ~count:(max 5 (count / 4))
    (Gen.program ()) (fun sketch ->
      let dir = temp_dir () in
      Fun.protect
        ~finally:(fun () -> remove_tree dir)
        (fun () -> Oracle.cache_transparent ~dir sketch))

(* ------------------------------ lint ----------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_lint_cone_hashes () =
  let digests = Cache.Canon.cone_digests in
  let duplicated =
    Circuit.(
      empty 4 |> h 0 |> cx 0 1
      |> tracepoint 1 [ 0; 1 ]
      |> h 2 |> cx 2 3
      |> tracepoint 2 [ 2; 3 ]
      |> tracepoint 3 [ 2; 3 ])
  in
  let ds = Analysis.Lint.check_cones ~digests duplicated in
  Alcotest.(check int) "one MQ020 per tracepoint + one group" 4 (List.length ds);
  List.iter
    (fun d -> Alcotest.(check string) "code" "MQ020" d.Analysis.Lint.code)
    ds;
  Alcotest.(check bool)
    "duplicate group flagged" true
    (List.exists
       (fun d -> contains ~sub:"share identical cones" d.Analysis.Lint.message)
       ds);
  (* the hash is canonical, so the relabel-equivalent cone on qubits
     (2,3) joins the group too: all three tracepoints share one hash *)
  Alcotest.(check bool)
    "group names the sharing tracepoints" true
    (List.exists
       (fun d -> contains ~sub:"3 tracepoints" d.Analysis.Lint.message)
       ds);
  (* distinct cones: no group diagnostic *)
  let distinct = three_cone_circuit 0.7 in
  Alcotest.(check int)
    "no group for distinct cones" 3
    (List.length (Analysis.Lint.check_cones ~digests distinct))

(* ------------------------------ jsonx ----------------------------------- *)

module Jsonx = Server.Jsonx

let parse_exn s =
  match Jsonx.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "json parse: %s" e

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("id", Jsonx.int 3);
        ("s", Jsonx.Str "he\"llo\n\t");
        ("xs", Jsonx.List [ Jsonx.Num 1.5; Jsonx.Bool true; Jsonx.Null ]);
        ("nested", Jsonx.Obj [ ("pi", Jsonx.Num 3.141592653589793) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (parse_exn (Jsonx.to_string v) = v);
  Alcotest.(check bool)
    "garbage is an Error" true
    (match Jsonx.parse "{oops" with Error _ -> true | Ok _ -> false);
  Alcotest.(check string)
    "non-finite floats are null" "[null,null,null]"
    (Jsonx.to_string
       (Jsonx.List [ Jsonx.Num infinity; Jsonx.Num neg_infinity; Jsonx.Num nan ]));
  Alcotest.(check string)
    "integers print without exponent" "{\"n\":42}"
    (Jsonx.to_string (Jsonx.Obj [ ("n", Jsonx.int 42) ]))

(* ------------------------------ server ---------------------------------- *)

let drive state lines =
  let out = ref [] in
  let emit j = out := j :: !out in
  let last =
    List.fold_left (fun _ line -> Server.handle_line state ~emit line) `Continue lines
  in
  (List.rev !out, last)

let member_exn key j =
  match Jsonx.member key j with
  | Some v -> v
  | None -> Alcotest.failf "missing %S in %s" key (Jsonx.to_string j)

let bool_exn j =
  match Jsonx.to_bool j with
  | Some b -> b
  | None -> Alcotest.failf "not a bool: %s" (Jsonx.to_string j)

let int_exn j =
  match Jsonx.to_int j with
  | Some i -> i
  | None -> Alcotest.failf "not an int: %s" (Jsonx.to_string j)

let test_server_ping_and_errors () =
  let state = Server.make_state () in
  let out, k =
    drive state
      [
        {|{"id":1,"method":"ping"}|};
        "this is not json";
        {|{"id":2,"method":"no-such-method"}|};
      ]
  in
  Alcotest.(check bool) "continues" true (k = `Continue);
  match out with
  | [ pong; bad; unknown ] ->
      Alcotest.(check bool)
        "pong" true
        (Jsonx.member "result" pong <> None);
      Alcotest.(check bool) "bad json errors" true (Jsonx.member "error" bad <> None);
      Alcotest.(check bool)
        "unknown method errors" true
        (Jsonx.member "error" unknown <> None)
  | _ -> Alcotest.failf "expected 3 response lines, got %d" (List.length out)

let ghz_qasm =
  "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nT 1 q[0,1];\n"

let verify_req id =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", Jsonx.int id);
         ("method", Jsonx.Str "verify");
         ( "params",
           Jsonx.Obj
             [
               ("qasm", Jsonx.Str ghz_qasm);
               ("guarantee", Jsonx.Str "pure:1");
               ("count", Jsonx.int 4);
               ("seed", Jsonx.int 7);
             ] );
       ])

let test_server_verify_warm () =
  let state = Server.make_state ~cache:(Cache.create ()) () in
  let out, _ = drive state [ verify_req 1; verify_req 2 ] in
  let results =
    List.filter (fun j -> Jsonx.member "result" j <> None) out
  in
  match results with
  | [ first; second ] ->
      let verified j =
        member_exn "result" j |> member_exn "verified" |> bool_exn
      in
      Alcotest.(check bool) "GHZ verifies" true (verified first);
      Alcotest.(check bool) "still verifies warm" true (verified second);
      let cache_field name j =
        member_exn "result" j |> member_exn "cache" |> member_exn name
        |> int_exn
      in
      Alcotest.(check int) "cold request: no hits" 0 (cache_field "hits" first);
      Alcotest.(check bool)
        "warm request reports hits" true
        (cache_field "hits" second > 0);
      let executions j =
        member_exn "result" j |> member_exn "executions" |> int_exn
      in
      Alcotest.(check bool) "cold executed" true (executions first > 0);
      Alcotest.(check int) "warm executed nothing" 0 (executions second)
  | _ -> Alcotest.failf "expected 2 results, got %d" (List.length results)

(* translation validation over the protocol: a daemon started with
   [~certify:true] must emit a "certify" event (checker verdict +
   obligation counts) for every verify request — including the warm one,
   whose cached certified plan is re-checked — while a plain daemon only
   certifies requests that opt in with a certify:true param *)
let test_server_verify_certify () =
  let certify_events out =
    List.filter
      (fun j ->
        match Jsonx.member "event" j with
        | Some (Jsonx.Str "certify") -> true
        | _ -> false)
      out
  in
  let state = Server.make_state ~cache:(Cache.create ()) ~certify:true () in
  let out, _ = drive state [ verify_req 1; verify_req 2 ] in
  (match certify_events out with
  | [ _; _ ] as evs ->
      List.iter
        (fun j ->
          Alcotest.(check bool)
            "certified" true
            (member_exn "certified" j |> bool_exn);
          Alcotest.(check bool)
            "chain has steps" true
            (member_exn "steps" j |> int_exn > 0))
        evs
  | evs -> Alcotest.failf "expected 2 certify events, got %d" (List.length evs));
  Alcotest.(check bool)
    "still verifies under certification" true
    (List.exists
       (fun j ->
         match Jsonx.member "result" j with
         | Some r -> member_exn "verified" r |> bool_exn
         | None -> false)
       out);
  (* per-request opt-in on an uncertifying daemon *)
  let state = Server.make_state () in
  let with_certify =
    {|{"id":3,"method":"verify","params":{"qasm":|}
    ^ Jsonx.to_string (Jsonx.Str ghz_qasm)
    ^ {|,"guarantee":"pure:1","count":4,"seed":7,"certify":true}}|}
  in
  let out, _ = drive state [ verify_req 4; with_certify ] in
  Alcotest.(check int)
    "only the opted-in request is certified" 1
    (List.length (certify_events out))

(* request-id plumbing: a client-supplied top-level request_id is echoed
   on result AND error lines; requests without one get a generated req-N *)
let test_server_request_ids () =
  let state = Server.make_state () in
  let out, _ =
    drive state
      [
        {|{"id":1,"request_id":"cli-abc","method":"ping"}|};
        {|{"id":2,"method":"ping"}|};
        {|{"id":3,"request_id":"cli-err","method":"no-such-method"}|};
      ]
  in
  match out with
  | [ a; b; e ] ->
      Alcotest.(check (option string))
        "client id echoed" (Some "cli-abc")
        (Jsonx.mem_str "request_id" a);
      (match Jsonx.mem_str "request_id" b with
      | Some rid ->
          Alcotest.(check bool)
            "generated ids are req-N" true
            (String.length rid > 4 && String.sub rid 0 4 = "req-")
      | None -> Alcotest.fail "no request_id on the generated line");
      Alcotest.(check (option string))
        "error lines carry the id too" (Some "cli-err")
        (Jsonx.mem_str "request_id" e);
      Alcotest.(check bool)
        "and are errors" true
        (Jsonx.member "error" e <> None)
  | _ -> Alcotest.failf "expected 3 lines, got %d" (List.length out)

(* run [f] with obs enabled against fresh rings/registry, restoring the
   caller's setting — the metrics/trace RPCs only have content under obs *)
let with_obs_enabled f =
  let was = Obs.enabled () in
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.configure ~enabled:true;
  Fun.protect
    ~finally:(fun () ->
      Obs.configure ~enabled:was;
      Obs.Span.reset ();
      Obs.Metrics.reset ())
    f

let test_server_metrics_rpc () =
  with_obs_enabled (fun () ->
      let state = Server.make_state ~cache:(Cache.create ()) () in
      let out, _ =
        drive state [ verify_req 1; {|{"id":2,"method":"metrics"}|} ]
      in
      let metrics_result =
        List.filter_map (fun j -> Jsonx.member "result" j) out
        |> List.filter_map (Jsonx.mem_str "prometheus")
      in
      match metrics_result with
      | [ text ] ->
          let has needle =
            Alcotest.(check bool)
              ("exposition has " ^ needle)
              true
              (let n = String.length needle in
               let rec go i =
                 i + n <= String.length text
                 && (String.sub text i n = needle || go (i + 1))
               in
               go 0)
          in
          has "# TYPE morphqpv_requests_total counter\n";
          has "morphqpv_requests_total{verb=\"verify\"} 1\n";
          has "# TYPE morphqpv_request_seconds histogram\n";
          has "morphqpv_request_seconds_count{verb=\"verify\"} 1\n";
          has "morphqpv_request_seconds_bucket{verb=\"verify\",le=\"+Inf\"} 1\n";
          has "# TYPE morphqpv_cache_hit_ratio gauge\n";
          has "morphqpv_obs_span_dropped_total 0\n"
      | l -> Alcotest.failf "expected 1 metrics result, got %d" (List.length l))

let test_server_trace_rpc () =
  with_obs_enabled (fun () ->
      let state = Server.make_state ~cache:(Cache.create ()) () in
      let tagged id rid meth params =
        Jsonx.to_string
          (Jsonx.Obj
             ([
                ("id", Jsonx.int id);
                ("request_id", Jsonx.Str rid);
                ("method", Jsonx.Str meth);
              ]
             @ params))
      in
      let verify =
        match parse_exn (verify_req 1) with
        | Jsonx.Obj kvs ->
            Jsonx.to_string
              (Jsonx.Obj (("request_id", Jsonx.Str "t-1") :: kvs))
        | _ -> assert false
      in
      let trace =
        tagged 2 "t-trace" "trace"
          [ ("params", Jsonx.Obj [ ("request_id", Jsonx.Str "t-1") ]) ]
      in
      let unknown =
        tagged 3 "t-miss" "trace"
          [ ("params", Jsonx.Obj [ ("request_id", Jsonx.Str "nope") ]) ]
      in
      let out, _ = drive state [ verify; trace; unknown ] in
      let by_id n =
        match
          List.filter
            (fun j ->
              Jsonx.mem_int "id" j = Some n
              && (Jsonx.member "result" j <> None
                 || Jsonx.member "error" j <> None))
            out
        with
        | [ j ] -> j
        | l ->
            Alcotest.failf "expected 1 response for id %d, got %d" n
              (List.length l)
      in
      match (by_id 2, by_id 3) with
      | traced, missing ->
          let r = member_exn "result" traced in
          Alcotest.(check (option string))
            "trace targets the verify request" (Some "t-1")
            (Jsonx.mem_str "request_id" r);
          Alcotest.(check (option string))
            "records the verb" (Some "verify")
            (Jsonx.mem_str "verb" r);
          let events =
            match Jsonx.mem_list "trace" r with
            | Some l -> l
            | None -> Alcotest.fail "no trace list"
          in
          Alcotest.(check bool) "has events" true (List.length events > 0);
          let root = List.hd events in
          Alcotest.(check (option string))
            "chrome phase" (Some "B") (Jsonx.mem_str "ph" root);
          Alcotest.(check (option string))
            "request id in args" (Some "t-1")
            (Option.bind (Jsonx.member "args" root) (Jsonx.mem_str "req"));
          Alcotest.(check bool)
            "unknown request id errors" true
            (Jsonx.member "error" missing <> None))

(* ----------------------- jsonx property tests --------------------------- *)

let gen_jsonx : Jsonx.t QCheck.Gen.t =
  let open QCheck.Gen in
  (* dyadic rationals: finite by construction, exactly representable, so
     the writer's %.17g/%.0f output parses back to the identical float *)
  let finite_float =
    map2
      (fun m e -> Float.ldexp (float_of_int m) e)
      (int_range (-1_000_000) 1_000_000)
      (int_range (-20) 20)
  in
  let any_string = string_size ~gen:char (int_range 0 12) in
  let scalar =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map Jsonx.int (int_range (-1_000_000_000) 1_000_000_000);
        map (fun f -> Jsonx.Num f) finite_float;
        map (fun s -> Jsonx.Str s) any_string;
      ]
  in
  let rec value depth =
    if depth <= 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map
              (fun l -> Jsonx.List l)
              (list_size (int_range 0 4) (value (depth - 1))) );
          ( 1,
            map
              (fun kvs -> Jsonx.Obj kvs)
              (list_size (int_range 0 4) (pair any_string (value (depth - 1))))
          );
        ]
  in
  value 3

let prop_jsonx_roundtrip =
  QCheck.Test.make ~name:"jsonx: parse (to_string v) = v" ~count
    (QCheck.make ~print:Jsonx.to_string gen_jsonx)
    (fun v -> parse_exn (Jsonx.to_string v) = v)

let test_jsonx_escaping () =
  Alcotest.(check string)
    "control chars and quotes escape" {|"a\"b\\c\nd\te\u0001\r"|}
    (Jsonx.to_string (Jsonx.Str "a\"b\\c\nd\te\x01\r"));
  Alcotest.(check bool)
    "escape forms parse back to raw bytes" true
    (parse_exn {|"A\n\"\\\/"|} = Jsonx.Str "A\n\"\\/");
  Alcotest.(check bool)
    "writer output is always one line" false
    (String.contains (Jsonx.to_string (Jsonx.Str "multi\nline")) '\n')

let prop_server_obs_transparent =
  QCheck.Test.make
    ~name:"server obs transparency (verify RPC, obs off = obs on)"
    ~count:(max 5 (count / 10))
    (Gen.program ())
    Oracle.server_obs_transparent

let test_server_shutdown () =
  let state = Server.make_state () in
  let out, k = drive state [ {|{"id":9,"method":"shutdown"}|} ] in
  Alcotest.(check bool) "stops" true (k = `Stop);
  Alcotest.(check bool)
    "acknowledges" true
    (List.exists (fun j -> Jsonx.member "result" j <> None) out)

(* end-to-end over a real Unix socket: fork a daemon, ping it, verify a
   program twice (the second response must report cache hits), shut it
   down with SIGTERM and reap a clean exit *)
let test_serve_socket_smoke () =
  let path = Filename.temp_file "morphqpv-serve" ".sock" in
  Sys.remove path;
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (* announce readiness to the parent through the pipe *)
      let on_ready () =
        ignore (Unix.write w (Bytes.of_string "r") 0 1);
        Unix.close w
      in
      Server.serve ~cache:(Cache.create ()) ~on_ready (Server.Unix_path path);
      exit 0
  | pid ->
      Unix.close w;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [ Unix.WNOHANG ] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          ignore (Unix.read r (Bytes.create 1) 0 1);
          Unix.close r;
          let addr = Server.Unix_path path in
          let request line =
            match Server.Client.request addr (parse_exn line) with
            | Ok j -> j
            | Error e -> Alcotest.failf "client error: %s" e
          in
          let pong = request {|{"id":1,"method":"ping"}|} in
          Alcotest.(check bool) "pong" true (Jsonx.member "result" pong <> None);
          let first = request (verify_req 2) in
          let second = request (verify_req 3) in
          let hits j =
            member_exn "result" j |> member_exn "cache" |> member_exn "hits"
            |> int_exn
          in
          Alcotest.(check int) "cold over socket: no hits" 0 (hits first);
          Alcotest.(check bool) "warm over socket: hits" true (hits second > 0);
          Unix.kill pid Sys.sigterm;
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool)
            "clean exit on SIGTERM" true
            (status = Unix.WEXITED 0);
          Alcotest.(check bool)
            "socket path cleaned up" false (Sys.file_exists path))

(* ------------------------------ spec ------------------------------------ *)

let test_spec_grammar () =
  let c = ghz3 in
  let ok = function Ok p -> p | Error e -> Alcotest.failf "spec: %s" e in
  (match ok (Server.Spec.parse_predicate c 3 "pure:1") with
  | Predicate.Is_pure 1 -> ()
  | _ -> Alcotest.fail "pure:1");
  (match ok (Server.Spec.parse_predicate c 3 "purity-ge:1,0.5") with
  | Predicate.Purity_ge (1, b) -> Alcotest.(check (float 0.) "bound" 0.5 b)
  | _ -> Alcotest.fail "purity-ge");
  (match Server.Spec.parse_predicate c 3 "pure:not-a-number" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed predicate must not parse");
  (match ok (Server.Spec.parse_budget "seq:0.01,0.1,500") with
  | `Sequential s ->
      Alcotest.(check int) "max shots" 500 s.Stats.Tests.max_shots
  | _ -> Alcotest.fail "seq budget");
  (match Server.Spec.parse_budget "fixed:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative budget must not parse");
  (match ok (Server.Spec.parse_mode "tomo:32") with
  | Characterize.Tomography { shots = 32; project = true } -> ()
  | _ -> Alcotest.fail "tomo mode");
  match ok (Server.Spec.parse_mode "exact") with
  | Characterize.Exact -> ()
  | _ -> Alcotest.fail "exact mode"

let () =
  Alcotest.run "cache"
    [
      ( "fnv",
        [ Alcotest.test_case "golden vectors" `Quick test_fnv_golden ] );
      ( "canon",
        [
          Alcotest.test_case "normalization" `Quick test_canon_normalization;
          qtest prop_canonical_relabeling_invariant;
          qtest prop_units_relabeling_invariant;
        ] );
      ( "store",
        [
          Alcotest.test_case "lru byte bound" `Quick test_store_lru;
          Alcotest.test_case "namespaces" `Quick test_store_namespaces;
          Alcotest.test_case "persistence" `Quick test_store_persistence;
        ] );
      ( "memo",
        [
          Alcotest.test_case "incremental warm + edited" `Quick
            test_incremental_warm_and_edited;
          Alcotest.test_case "whole-result fallback" `Quick
            test_whole_result_memo;
          Alcotest.test_case "verdict" `Quick test_verdict_memo;
          Alcotest.test_case "segments" `Quick test_segments_memo;
          Alcotest.test_case "tomography" `Quick test_tomo_memo;
          qtest prop_cache_transparent;
        ] );
      ( "lint",
        [ Alcotest.test_case "MQ020 cone hashes" `Quick test_lint_cone_hashes ]
      );
      ( "server",
        [
          Alcotest.test_case "jsonx roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "jsonx escaping" `Quick test_jsonx_escaping;
          qtest prop_jsonx_roundtrip;
          Alcotest.test_case "ping + errors" `Quick test_server_ping_and_errors;
          Alcotest.test_case "request ids" `Quick test_server_request_ids;
          Alcotest.test_case "metrics rpc" `Quick test_server_metrics_rpc;
          Alcotest.test_case "trace rpc" `Quick test_server_trace_rpc;
          qtest prop_server_obs_transparent;
          Alcotest.test_case "verify warm" `Quick test_server_verify_warm;
          Alcotest.test_case "verify certified" `Quick
            test_server_verify_certify;
          Alcotest.test_case "shutdown" `Quick test_server_shutdown;
          Alcotest.test_case "socket smoke" `Quick test_serve_socket_smoke;
          Alcotest.test_case "spec grammar" `Quick test_spec_grammar;
        ] );
    ]
