// Bernstein-Vazirani with secret string 101 (q0 and q2 coupled to the
// phase-kickback ancilla q3). T 1 observes the recovered secret before
// readout.
OPENQASM 2.0;
qreg q[4];
creg c[3];
x q[3];
h q[0];
h q[1];
h q[2];
h q[3];
cx q[0],q[3];
cx q[2],q[3];
h q[0];
h q[1];
h q[2];
T 1 q[0,1,2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
