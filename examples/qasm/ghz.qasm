// GHZ state preparation; the tracepoint observes the full entangled
// register, so the lightcone of T 1 is all three qubits.
OPENQASM 2.0;
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
T 1 q[0,1,2];
// the final measurement distribution is half |000>, half |111>
expect 0 0.5, 7 0.5;
