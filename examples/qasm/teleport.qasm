// Quantum teleportation with MorphQPV tracepoint pragmas.
// T 1 = payload input (alice), T 3 = alice after measurement,
// T 4 = bob before corrections, T 2 = corrected output (bob).
OPENQASM 2.0;
qreg q[3];
creg c[2];
T 1 q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
T 3 q[0];
T 4 q[2];
if (c[1]==1) x q[2];
if (c[0]==1) z q[2];
T 2 q[2];
