(* morphqpv — command-line front end.

   Subcommands:
     info      — static statistics of a mini-QASM program
     simulate  — run a program; print counts and tracepoint states
     sample    — characterize a program and report approximation accuracy
     verify    — validate an assume-guarantee assertion
     certify   — translation-validate the transpile pipeline (MQ021)

   Predicate specs for `verify` (tracepoint 0 = the program input):
     pure:T                 the state at tracepoint T is pure
     equals:A,B             states at tracepoints A and B are equal
     equals-basis:T,K       state at T equals |K><K|
     diag:T,K,LO,HI         diagonal entry K of T's state lies in [LO, HI]
     expect-ge:T,PAULI,V    Pauli expectation at T is >= V  (e.g. ZII)
     expect-le:T,PAULI,V    Pauli expectation at T is <= V
     purity-ge:T,V          purity at T is >= V *)

open Morphcore

let read_circuit path =
  try Ok (Qasm.parse_file path) with
  | Qasm.Parse_error { line; column; message; _ } ->
      Error
        (if column > 0 then
           Printf.sprintf "%s:%d:%d: %s" path line column message
         else Printf.sprintf "%s:%d: %s" path line message)
  | Circuit.Error { code; message; loc } ->
      Error
        (match loc with
        | Some (line, col) ->
            Printf.sprintf "%s:%d:%d: [%s] %s" path line col code message
        | None -> Printf.sprintf "%s: [%s] %s" path code message)
  | Sys_error msg -> Error msg

(* like [read_circuit], but keeps the [expect] pragma side channel *)
let read_full path =
  try Ok (Qasm.parse_file_full path) with
  | Qasm.Parse_error { line; column; message; _ } ->
      Error
        (if column > 0 then
           Printf.sprintf "%s:%d:%d: %s" path line column message
         else Printf.sprintf "%s:%d: %s" path line message)
  | Circuit.Error { code; message; loc } ->
      Error
        (match loc with
        | Some (line, col) ->
            Printf.sprintf "%s:%d:%d: [%s] %s" path line col code message
        | None -> Printf.sprintf "%s: [%s] %s" path code message)
  | Sys_error msg -> Error msg

(* predicate / budget spec parsing lives in [Server.Spec] so the serve
   daemon and the CLI accept exactly one grammar *)
let parse_predicate = Server.Spec.parse_predicate
let parse_budget = Server.Spec.parse_budget

(* ------------------------------- info -------------------------------- *)

let info_cmd file =
  match read_circuit file with
  | Error e ->
      prerr_endline e;
      1
  | Ok c ->
      Format.printf "qubits:          %d@." (Circuit.num_qubits c);
      Format.printf "clbits:          %d@." (Circuit.num_clbits c);
      Format.printf "gates:           %d@." (Circuit.gate_count c);
      Format.printf "two-qubit gates: %d@." (Circuit.two_qubit_count c);
      Format.printf "depth:           %d@." (Circuit.depth c);
      Format.printf "tracepoints:     %s@."
        (String.concat ", "
           (List.map
              (fun (id, qs) ->
                Printf.sprintf "T%d on q[%s]" id
                  (String.concat "," (List.map string_of_int qs)))
              (Circuit.tracepoints c)));
      Format.printf "@.%s" (Render.Draw.to_string c);
      0

(* ----------------------------- simulate ------------------------------ *)

let simulate_cmd file shots seed noisy =
  match read_circuit file with
  | Error e ->
      prerr_endline e;
      1
  | Ok c ->
      let rng = Stats.Rng.make seed in
      let noise = if noisy then Sim.Noise.ibm_cairo else Sim.Noise.ideal in
      let counts = Sim.Engine.sample_counts ~rng ~noise ~shots c in
      Format.printf "counts (%d shots):@." shots;
      List.iter
        (fun (k, n) ->
          Format.printf "  |%s> : %d@."
            (String.init (Circuit.num_qubits c) (fun j ->
                 if (k lsr (Circuit.num_qubits c - 1 - j)) land 1 = 1 then '1'
                 else '0'))
            n)
        counts;
      let traces = Sim.Engine.tracepoint_states ~rng ~noise c in
      List.iter
        (fun (id, rho) ->
          Format.printf "@.tracepoint T%d state:@.%a@." id Linalg.Cmat.pp rho)
        traces;
      0

(* ------------------------------ sample ------------------------------- *)

let sample_cmd file count kind seed =
  match read_circuit file with
  | Error e ->
      prerr_endline e;
      1
  | Ok c ->
      let rng = Stats.Rng.make seed in
      let kind =
        match kind with
        | "basis" -> Clifford.Sampling.Basis
        | "haar" -> Clifford.Sampling.Haar
        | _ -> Clifford.Sampling.Clifford
      in
      let program = Program.make c in
      let ch = Characterize.run ~rng ~kind program ~count in
      let approx = Approx.of_characterization ch in
      Format.printf "characterized %d tracepoints from %d inputs@."
        (List.length (Approx.tracepoint_ids approx) - 1)
        count;
      Format.printf "cost: %a@." Sim.Cost.pp ch.Characterize.cost;
      List.iter
        (fun tp ->
          if tp <> 0 then begin
            let accs = Verify.probe_accuracies ~rng ~count:10 approx program ~tracepoint:tp in
            Format.printf
              "tracepoint T%d: approximation accuracy mean %.4f (min %.4f) on \
               10 random probes; Theorem 2 value %.4f@."
              tp (Stats.Describe.mean accs) (Stats.Describe.min accs)
              (Approx.theoretical_accuracy
                 ~n_in:(Program.num_input_qubits program)
                 ~n_sample:count)
          end)
        (Approx.tracepoint_ids approx);
      0

(* ------------------------------ certify ------------------------------ *)

(* render the checker's structured failures as lint-style MQ021 lines *)
let print_certify_failures ~file failures =
  List.iter
    (fun (f : Transpile.Certify.failure) ->
      let loc =
        match f.Transpile.Certify.loc with
        | Some (line, col) -> Printf.sprintf ":%d:%d" line col
        | None -> ""
      in
      Format.eprintf "%s%s: error[MQ021]: %s@." file loc
        (Transpile.Certify.failure_message f))
    failures

(* pre-flight used by verify/serve and the standalone subcommand: run the
   transpile pipeline through the certificate-emitting pass variants and
   re-check the chain with the independent checker *)
let run_certify ?cache ~file full =
  let report =
    Verify.certify_transpile ?cache ~locs:full.Qasm.locs full.Qasm.circuit
  in
  let s = report.Verify.cert_summary in
  if report.Verify.certified then
    Format.printf
      "%s: certified steps=%d obligations=%d (local_equiv=%d outside_cone=%d \
       identity_elim=%d barrier_elim=%d mapped=%d)@."
      file s.Transpile.Certify.chain_steps
      (Transpile.Certify.total_obligations s)
      s.Transpile.Certify.local_equiv s.Transpile.Certify.outside_cone
      s.Transpile.Certify.identity_elim s.Transpile.Certify.barrier_elim
      s.Transpile.Certify.permutation
  else begin
    Format.printf "%s: NOT CERTIFIED (%d failures)@." file
      (List.length report.Verify.cert_failures);
    print_certify_failures ~file report.Verify.cert_failures
  end;
  report.Verify.certified

(* morphqpv certify: translation-validate the transpile pipeline over one
   or more programs; exit 1 as soon as any obligation fails to check *)
let certify_cmd files =
  let failed = ref false in
  List.iter
    (fun file ->
      match read_full file with
      | Error e ->
          prerr_endline e;
          failed := true
      | Ok full -> if not (run_certify ~file full) then failed := true)
    files;
  if !failed then 1 else 0

(* ------------------------------ verify ------------------------------- *)

(* check the file's [expect] pragmas against sampled measurement counts;
   returns false when any pragma is malformed or statistically violated *)
let check_expects ~budget ~rng program (expects : Qasm.expect_pragma list) =
  List.for_all
    (fun (e : Qasm.expect_pragma) ->
      let line, col = e.Qasm.expect_loc in
      match
        Assertion.Dist.make ?significance:e.Qasm.significance e.Qasm.expected
      with
      | exception Invalid_argument msg ->
          Format.eprintf "expect at %d:%d: %s@." line col msg;
          false
      | dist ->
          let input =
            Qstate.Statevec.basis (Program.num_input_qubits program) 0
          in
          let r = Verify.check_counts ~budget ~rng program dist ~input in
          Format.printf
            "expect at %d:%d: %s (chi2 %.4g, p %.4g, df %g, shots %d%s)@."
            line col
            (if r.Verify.counts_hold then "OK" else "VIOLATED")
            r.Verify.test.Stats.Tests.statistic r.Verify.test.Stats.Tests.pvalue
            r.Verify.test.Stats.Tests.df r.Verify.shots_used
            (if r.Verify.early_stop then ", early stop" else "");
          r.Verify.counts_hold)
    expects

let verify_cmd file assumes guarantees count solver seed budget use_cache
    certify =
  match (read_full file, parse_budget budget) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok full, Ok budget -> (
      let c = full.Qasm.circuit in
      (* --cache forces an in-memory cache even without the env vars;
         MORPHQPV_CACHE_DIR / MORPHQPV_CACHE alone also enable it *)
      let cache =
        match (use_cache, Cache.of_env ()) with
        | _, Some cache -> Some cache
        | true, None -> Some (Cache.create ())
        | false, None -> None
      in
      (* --certify: translation-validate the transpile pipeline before any
         verification work; a failed certificate is a hard MQ021 error *)
      if certify && not (run_certify ?cache ~file full) then 1
      else
      let rng = Stats.Rng.make seed in
      let program = Program.make c in
      let n_in = Program.num_input_qubits program in
      let expects_ok = check_expects ~budget ~rng program full.Qasm.expects in
      let parse_all specs =
        List.fold_left
          (fun acc spec ->
            match (acc, parse_predicate c n_in spec) with
            | Error e, _ -> Error e
            | Ok l, Ok p -> Ok (p :: l)
            | Ok _, Error e -> Error e)
          (Ok []) specs
        |> Result.map List.rev
      in
      match (parse_all assumes, parse_all guarantees) with
      | Error e, _ | _, Error e ->
          prerr_endline e;
          1
      | Ok _, Ok [] when full.Qasm.expects <> [] ->
          (* distribution-only verification via the expect pragmas *)
          if expects_ok then 0 else 1
      | Ok _, Ok [] ->
          prerr_endline
            "verify: at least one --guarantee (or an expect pragma in the \
             file) is required";
          1
      | Ok assumes, Ok guarantees ->
          let assertion = Assertion.make ~name:file ~assumes ~guarantees () in
          Format.printf "%s@." (Assertion.describe assertion);
          let count =
            if count > 0 then count else Approx.samples_for_full_accuracy ~n_in
          in
          let ch = Characterize.run ?cache ~rng program ~count in
          let approx = Approx.of_characterization ch in
          let solver = Server.Spec.parse_solver solver in
          let options = { Verify.default_options with solver } in
          (match
             Verify.validate ~options ~rng ~confirm:program ?cache approx
               assertion
           with
          | Verify.Verified { confidence; max_objective } ->
              Format.printf
                "VERIFIED: max guarantee objective %.3g; confidence %.4f \
                 (%a, threshold %.2f)@."
                max_objective confidence.Confidence.confidence
                Stats.Beta_dist.pp confidence.Confidence.dist
                confidence.Confidence.epsilon
          | Verify.Violated { counterexample; objective; _ } ->
              Format.printf "VIOLATED (objective %.4f). Counter-example input:@.%a@."
                objective Linalg.Cmat.pp counterexample);
          Format.printf "characterization cost: %a@." Sim.Cost.pp
            ch.Characterize.cost;
          (match cache with
          | None -> ()
          | Some cache ->
              let s : Cache.stats = Cache.stats cache in
              Format.printf
                "cache: %d hits, %d misses, %d entries (%d bytes)@." s.hits
                s.misses s.entries s.bytes);
          if expects_ok then 0 else 1)

(* ----------------------------- optimize ------------------------------ *)

let optimize_cmd file output certify =
  match read_full file with
  | Error e ->
      prerr_endline e;
      1
  | Ok full ->
      let c = full.Qasm.circuit in
      (* --certify: run the certificate-emitting variant and validate the
         chain with the independent checker instead of trusting the pass *)
      let optimized, cert_ok =
        if not certify then (Transpile.Passes.optimize c, true)
        else
          let optimized, cert = Transpile.Passes.optimize_cert c in
          match
            Transpile.Certify.check ~locs:full.Qasm.locs cert c optimized
          with
          | Ok s ->
              Format.eprintf "certificate: OK (steps=%d, obligations=%d)@."
                s.Transpile.Certify.chain_steps
                (Transpile.Certify.total_obligations s);
              (optimized, true)
          | Error failures ->
              print_certify_failures ~file failures;
              (optimized, false)
      in
      Format.eprintf "gates: %d -> %d (%.0f%% removed); equivalence check: %b@."
        (Circuit.gate_count c)
        (Circuit.gate_count optimized)
        (100. *. Transpile.Passes.gate_reduction ~before:c ~after:optimized)
        (if Circuit.num_qubits c <= 8 then
           Transpile.Equiv.unitaries_equal c optimized
         else Transpile.Equiv.equivalent c optimized);
      let qasm = Qasm.to_string optimized in
      (match output with
      | None -> print_string qasm
      | Some path ->
          let oc = open_out path in
          output_string oc qasm;
          close_out oc);
      if cert_ok then 0 else 1

(* ------------------------------ profile ------------------------------ *)

(* characterization-cost estimator handed to the MQ017 lint check: the
   analysis layer cannot see the simulator, so the wiring happens here *)
let characterization_seconds c =
  Sim.Cost.hardware_seconds (Sim.Cost.estimate_characterization c)

(* simulation-class estimator handed to the MQ018 lint check, same
   layering as above: the router lives in [Sim.Engine] *)
let simulation_class c =
  match Sim.Engine.sim_class c with
  | Sim.Engine.Class_dense -> "dense"
  | Sim.Engine.Class_sparse -> "sparse"
  | Sim.Engine.Class_stabilizer -> "stabilizer"
  | Sim.Engine.Class_rank k -> Printf.sprintf "stabilizer-rank 2^%d" k

(* morphqpv profile: run the program through the pipeline's phases with
   observability forced on, then print the span-tree summary as a
   per-phase/per-kernel table. [--trace] dumps the spans as Chrome
   trace_event JSONL, [--metrics] the metrics registry as JSON, [--prom]
   the registry in Prometheus text exposition format; each accepts [-]
   for stdout. *)
let write_output ~what path contents =
  if path = "-" then print_string contents
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Format.printf "%s written to %s@." what path
  end

let profile_cmd file shots count seed trace_out metrics_out prom_out =
  match read_circuit file with
  | Error e ->
      prerr_endline e;
      1
  | Ok c ->
      Obs.configure ~enabled:true;
      let since = Obs.Span.mark () in
      let rng = Stats.Rng.make seed in
      (* phase 1: gate-level simulation + sampling *)
      ignore
        (Obs.Span.with_ ~name:"profile.simulate" (fun () ->
             ignore (Sim.Engine.sample_counts ~rng ~shots c);
             Sim.Engine.tracepoint_states ~rng c));
      (* phase 2: transpile — optimization passes + segment compilation *)
      ignore
        (Obs.Span.with_ ~name:"profile.transpile" (fun () ->
             Transpile.Segments.compile (Transpile.Passes.optimize c)));
      (* phase 3: characterize *)
      let program = Program.make c in
      let ch =
        Obs.Span.with_ ~name:"profile.characterize" (fun () ->
            Characterize.run ~rng program ~count)
      in
      let approx = Approx.of_characterization ch in
      (* phase 4: verify — a trivially-true purity guarantee on the first
         real tracepoint, enough to drive the solver and probe kernels *)
      Obs.Span.with_ ~name:"profile.verify" (fun () ->
          match List.filter (fun tp -> tp <> 0) (Approx.tracepoint_ids approx) with
          | [] -> ()
          | tp :: _ ->
              let assertion =
                Assertion.make ~name:"profile" ~assumes:[]
                  ~guarantees:[ Predicate.Purity_ge (tp, 0.0) ] ()
              in
              let options =
                { Verify.default_options with budget = 600; restarts = 1 }
              in
              ignore (Verify.validate ~options ~rng approx assertion);
              ignore
                (Verify.probe_accuracies ~rng ~count:5 approx program
                   ~tracepoint:tp));
      (* the table: spans aggregated by name. Phase rows (prefixed
         "profile.") are disjoint, so their sum is the profiled wall
         time; kernel rows are inclusive times and may overlap phases
         and each other. *)
      let summary = Obs.Span.summary ~since () in
      let is_phase r =
        String.length r.Obs.Span.name >= 8
        && String.sub r.Obs.Span.name 0 8 = "profile."
      in
      let wall =
        List.fold_left
          (fun acc r -> if is_phase r then acc +. r.Obs.Span.total_s else acc)
          0. summary
      in
      Format.printf "%-34s %8s %12s %9s@." "span" "count" "total(ms)"
        "of wall";
      List.iter
        (fun r ->
          Format.printf "%-34s %8d %12.3f %8.1f%%@." r.Obs.Span.name
            r.Obs.Span.count
            (1e3 *. r.Obs.Span.total_s)
            (if wall > 0. then 100. *. r.Obs.Span.total_s /. wall else 0.))
        summary;
      Format.printf "%-34s %8s %12.3f@." "(wall: phase total)" ""
        (1e3 *. wall);
      let dropped = Obs.Span.dropped () in
      if dropped > 0 then
        Format.printf "note: %d span events dropped (ring full)@." dropped;
      Format.printf "@.counters:@.";
      List.iter
        (fun e ->
          match e.Obs.Metrics.data with
          | Obs.Metrics.Counter v ->
              let labels =
                match e.Obs.Metrics.labels with
                | [] -> ""
                | ls ->
                    "{"
                    ^ String.concat ","
                        (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
                    ^ "}"
              in
              Format.printf "  %-40s %d@." (e.Obs.Metrics.name ^ labels) v
          | _ -> ())
        (Obs.Metrics.snapshot ());
      (match trace_out with
      | Some path ->
          if path <> "-" then Format.printf "@.";
          write_output ~what:"trace" path (Obs.Export.trace_jsonl ~since ())
      | None -> ());
      (match metrics_out with
      | Some path ->
          write_output ~what:"metrics" path
            (Obs.Metrics.snapshot_json () ^ "\n")
      | None -> ());
      (match prom_out with
      | Some path ->
          write_output ~what:"prometheus metrics" path (Obs.Export.prometheus ())
      | None -> ());
      0

(* ------------------------------- lint -------------------------------- *)

(* morph-lint: run the static-analysis diagnostics (Analysis.Lint) over one
   or more mini-QASM files. Exit status 1 when any error-severity diagnostic
   is found (or any warning under --strict), 0 on a clean corpus. *)
let lint_cmd files strict quiet cost_threshold certify =
  let failed = ref false in
  List.iter
    (fun file ->
      match Analysis.Lint.lint_file file with
      | exception Sys_error msg ->
          prerr_endline msg;
          failed := true
      | diags ->
          (* MQ017/MQ018 need the circuit (not just the source) and the
             simulator's cost model / engine router, so they run here
             rather than inside [Lint.lint_file]; parse failures were
             already reported *)
          let diags =
            diags
            @ (match Qasm.parse_file_full file with
              | full ->
                  let c = full.Qasm.circuit in
                  Analysis.Lint.check_cost ~estimate:characterization_seconds
                    ?threshold:cost_threshold c
                  @ Analysis.Lint.check_sim_class ~classify:simulation_class c
                  (* MQ020 needs the canonical hasher from morphqpv.cache,
                     one layer above the analysis library *)
                  @ Analysis.Lint.check_cones ~digests:Cache.Canon.cone_digests
                      c
                  (* MQ021 (--certify) needs the certificate checker from
                     morphqpv.transpile: transpile through the certificate-
                     emitting passes and render every checker failure *)
                  @ (if not certify then []
                     else
                       Analysis.Lint.check_certify
                         ~certify:(fun c ->
                           let r =
                             Verify.certify_transpile ~locs:full.Qasm.locs c
                           in
                           List.map
                             (fun (f : Transpile.Certify.failure) ->
                               ( Transpile.Certify.failure_message f,
                                 f.Transpile.Certify.loc,
                                 f.Transpile.Certify.before_index ))
                             r.Verify.cert_failures)
                         c)
              | exception _ -> [])
          in
          List.iter
            (fun d ->
              let fails =
                match d.Analysis.Lint.severity with
                | Analysis.Lint.Error -> true
                | Analysis.Lint.Warning -> strict
                | Analysis.Lint.Info -> false
              in
              if fails then failed := true;
              if not (quiet && not fails) then
                Format.printf "%a@." (Analysis.Lint.pp ~file) d)
            diags)
    files;
  if !failed then 1 else 0

(* --------------------------- serve / client --------------------------- *)

module Jsonx = Server.Jsonx

let addr_of ~socket ~tcp =
  match tcp with
  | Some port -> Server.Tcp port
  | None -> Server.Unix_path socket

(* morphqpv serve: the long-running verification daemon. All requests
   share one content-addressed cache, so repeated verifications of the
   same (or isomorphic) programs skip characterization entirely. *)
let serve_cmd socket tcp cache_dir cache_mb certify log log_level =
  (match log with
  | Some dest ->
      let level =
        Option.value ~default:Obs.Log.Info
          (Option.bind log_level Obs.Log.level_of_string)
      in
      let sink =
        match dest with
        | "stderr" -> `Stderr
        | "-" | "stdout" -> `Stdout
        | path -> `File path
      in
      (try Obs.Log.configure ~level sink
       with Sys_error msg ->
         Format.eprintf "morphqpv serve: --log %s: %s@." dest msg;
         exit 1)
  | None -> ());
  let max_bytes = Option.map (fun mb -> mb * 1024 * 1024) cache_mb in
  let cache =
    match cache_dir with
    | Some dir -> Cache.create ?max_bytes ~dir ()
    | None -> (
        match Cache.of_env () with
        | Some c -> c
        | None -> Cache.create ?max_bytes ())
  in
  let addr = addr_of ~socket ~tcp in
  let on_ready () =
    match addr with
    | Server.Unix_path p -> Format.eprintf "morphqpv serve: listening on %s@." p
    | Server.Tcp port ->
        Format.eprintf "morphqpv serve: listening on 127.0.0.1:%d@." port
  in
  (try Server.serve ~cache ~certify ~on_ready addr with
  | Unix.Unix_error (e, fn, _) ->
      Format.eprintf "morphqpv serve: %s: %s@." fn (Unix.error_message e);
      exit 1);
  Format.eprintf "morphqpv serve: stopped@.";
  0

(* morphqpv client: one request against a running daemon; event lines and
   the terminal result line are printed as received. Exit 0 iff the
   request succeeded (and, for verify, the program verified).

   [--request-id] names the request (top-level field, echoed on the
   terminal line and usable with method trace later); for method trace
   it is the id of the request to fetch. Method metrics prints the raw
   Prometheus exposition, so the output is scrapeable as-is. [--watch]
   re-issues the request every SECS seconds until it fails. *)
let client_cmd socket tcp method_ file assumes guarantees count solver seed
    budget mode certify request_id watch =
  let addr = addr_of ~socket ~tcp in
  let method_ =
    if method_ <> "" then Ok method_
    else if file <> None then Ok "verify"
    else Ok "ping"
  in
  let params =
    match method_ with
    | Error _ as e -> e
    | Ok "verify" -> (
        match file with
        | None -> Error "client: method verify needs a FILE argument"
        | Some file -> (
            match In_channel.with_open_text file In_channel.input_all with
            | exception Sys_error msg -> Error msg
            | qasm ->
                let strings = List.map (fun s -> Jsonx.Str s) in
                Ok
                  (Jsonx.Obj
                     ([
                        ("qasm", Jsonx.Str qasm);
                        ("count", Jsonx.int count);
                        ("solver", Jsonx.Str solver);
                        ("seed", Jsonx.int seed);
                        ("budget", Jsonx.Str budget);
                        ("mode", Jsonx.Str mode);
                        ("certify", Jsonx.Bool certify);
                      ]
                     @ (if assumes = [] then []
                        else [ ("assume", Jsonx.List (strings assumes)) ])
                     @
                     if guarantees = [] then []
                     else [ ("guarantee", Jsonx.List (strings guarantees)) ]))))
    | Ok "trace" -> (
        match request_id with
        | Some r -> Ok (Jsonx.Obj [ ("request_id", Jsonx.Str r) ])
        | None -> Error "client: method trace needs --request-id")
    | Ok _ -> Ok (Jsonx.Obj [])
  in
  match (method_, params) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok method_, Ok params ->
      let req =
        Jsonx.Obj
          ([ ("id", Jsonx.int 1) ]
          @ (match request_id with
            (* for trace, --request-id is the lookup target, not this
               request's own id — naming the trace request the same id
               would shadow the target in the flight recorder *)
            | Some r when method_ <> "trace" ->
                [ ("request_id", Jsonx.Str r) ]
            | _ -> [])
          @ [ ("method", Jsonx.Str method_); ("params", params) ])
      in
      let on_event e = print_endline (Jsonx.to_string e) in
      let print_terminal terminal =
        match
          Option.bind (Jsonx.member "result" terminal) (Jsonx.mem_str "prometheus")
        with
        | Some text when method_ = "metrics" -> print_string text
        | _ -> print_endline (Jsonx.to_string terminal)
      in
      let once () =
        match Server.Client.request ~on_event addr req with
        | Error e ->
            prerr_endline ("client: " ^ e);
            1
        | Ok terminal -> (
            print_terminal terminal;
            match Jsonx.member "result" terminal with
            | None -> 1 (* error line *)
            | Some r -> (
                match Option.bind (Jsonx.member "verified" r) Jsonx.to_bool with
                | Some false -> 1
                | Some true | None -> 0))
      in
      (match watch with
      | None -> once ()
      | Some secs ->
          let rec loop () =
            let rc = once () in
            if rc <> 0 then rc
            else begin
              (try Unix.sleepf secs with Unix.Unix_error _ -> ());
              loop ()
            end
          in
          loop ())

(* morphqpv top: a live per-RPC console for a running daemon. Polls the
   stats and metrics RPCs every --interval seconds and renders one table
   row per verb: request/error tallies (from stats, available even with
   observability off) plus latency totals parsed out of the
   morphqpv_request_seconds histogram when the daemon runs with
   MORPHQPV_OBS=1 (dashes otherwise). *)
let top_cmd socket tcp interval iterations =
  let addr = addr_of ~socket ~tcp in
  let fetch method_ =
    Server.Client.request addr
      (Jsonx.Obj
         [
           ("id", Jsonx.int 1);
           ("method", Jsonx.Str method_);
           ("params", Jsonx.Obj []);
         ])
  in
  let result v = Jsonx.member "result" v in
  let verb_of series =
    let marker = "verb=\"" in
    let mlen = String.length marker in
    let n = String.length series in
    let rec find i =
      if i + mlen > n then None
      else if String.sub series i mlen = marker then begin
        let j = ref (i + mlen) in
        while !j < n && series.[!j] <> '"' do
          incr j
        done;
        Some (String.sub series (i + mlen) (!j - i - mlen))
      end
      else find (i + 1)
    in
    find 0
  in
  (* morphqpv_request_seconds_sum{verb="verify"} 1.23 → ("verify", 1.23) *)
  let hist_totals prom =
    let sums = ref [] and counts = ref [] in
    List.iter
      (fun line ->
        let grab prefix store =
          let plen = String.length prefix in
          if String.length line > plen && String.sub line 0 plen = prefix then
            match String.index_opt line ' ' with
            | None -> ()
            | Some sp -> (
                let series = String.sub line 0 sp in
                match
                  ( verb_of series,
                    float_of_string_opt
                      (String.sub line (sp + 1) (String.length line - sp - 1))
                  )
                with
                | Some verb, Some v -> store := (verb, v) :: !store
                | _ -> ())
        in
        grab "morphqpv_request_seconds_sum{" sums;
        grab "morphqpv_request_seconds_count{" counts)
      (String.split_on_char '\n' prom);
    (!sums, !counts)
  in
  let render stats prom =
    let by_verb =
      match Option.bind (result stats) (Jsonx.member "by_verb") with
      | Some (Jsonx.Obj fields) -> fields
      | _ -> []
    in
    let sums, counts =
      match prom with Some p -> hist_totals p | None -> ([], [])
    in
    Format.printf "%-10s %10s %8s %12s %12s@." "verb" "requests" "errors"
      "total(ms)" "avg(ms)";
    List.iter
      (fun (verb, v) ->
        let reqs = Option.value ~default:0 (Jsonx.mem_int "requests" v) in
        let errs = Option.value ~default:0 (Jsonx.mem_int "errors" v) in
        match (List.assoc_opt verb sums, List.assoc_opt verb counts) with
        | Some s, Some c when c > 0. ->
            Format.printf "%-10s %10d %8d %12.2f %12.2f@." verb reqs errs
              (1e3 *. s)
              (1e3 *. s /. c)
        | _ -> Format.printf "%-10s %10d %8d %12s %12s@." verb reqs errs "-" "-")
      by_verb;
    match
      ( Option.bind (result stats) (fun r ->
            Option.bind (Jsonx.member "uptime_s" r) Jsonx.to_num),
        Option.bind (result stats) (Jsonx.mem_int "requests"),
        Option.bind (result stats) (Jsonx.mem_int "span_dropped") )
    with
    | Some u, Some r, dropped ->
        Format.printf "@.uptime %.1fs · %d requests · %d spans dropped@." u r
          (Option.value ~default:0 dropped)
    | _ -> ()
  in
  let rec go i =
    match fetch "stats" with
    | Error e ->
        prerr_endline ("top: " ^ e);
        1
    | Ok stats ->
        let prom =
          match fetch "metrics" with
          | Ok m -> Option.bind (result m) (Jsonx.mem_str "prometheus")
          | Error _ -> None
        in
        if iterations <> 1 then Format.printf "\027[2J\027[H";
        render stats prom;
        Format.print_flush ();
        if iterations > 0 && i + 1 >= iterations then 0
        else begin
          (try Unix.sleepf interval with Unix.Unix_error _ -> ());
          go (i + 1)
        end
  in
  go 0

(* ----------------------------- cmdliner ------------------------------ *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-QASM program")

let seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~doc:"random seed")

let certify_flag doc = Arg.(value & flag & info [ "certify" ] ~doc)

let info_term = Term.(const info_cmd $ file_arg)

let simulate_term =
  let shots = Arg.(value & opt int 1000 & info [ "shots" ] ~doc:"number of shots") in
  let noisy = Arg.(value & flag & info [ "noisy" ] ~doc:"use the IBM-Cairo noise model") in
  Term.(const simulate_cmd $ file_arg $ shots $ seed_arg $ noisy)

let sample_term =
  let count = Arg.(value & opt int 8 & info [ "count" ] ~doc:"number of sampled inputs") in
  let kind =
    Arg.(value & opt string "clifford" & info [ "kind" ] ~doc:"basis | clifford | haar")
  in
  Term.(const sample_cmd $ file_arg $ count $ kind $ seed_arg)

let optimize_term =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"write optimized QASM to a file")
  in
  let certify =
    certify_flag
      "emit a translation-validation certificate for every pass and check it \
       with the independent checker; exit 1 (MQ021) on any failed obligation"
  in
  Term.(const optimize_cmd $ file_arg $ output $ certify)

let certify_term =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"mini-QASM programs to certify")
  in
  Term.(const certify_cmd $ files)

let lint_term =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"mini-QASM programs to lint")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"treat warnings as errors")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"print only failing diagnostics")
  in
  let cost_threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "cost-threshold" ] ~docv:"SECONDS"
          ~doc:
            "MQ017 threshold in estimated device seconds (default: \
             MORPHQPV_LINT_COST_THRESHOLD or 1.0)")
  in
  let certify =
    certify_flag
      "also run MQ021: translation-validate the transpile pipeline on each \
       file with the independent certificate checker"
  in
  Term.(const lint_cmd $ files $ strict $ quiet $ cost_threshold $ certify)

let profile_term =
  (* a plain-string positional (not [Arg.file]) so a missing program file
     is reported by [read_circuit] as a one-line error with exit 1,
     rather than a cmdliner usage error *)
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"mini-QASM program")
  in
  let shots =
    Arg.(value & opt int 256 & info [ "shots" ] ~doc:"shots for the simulate phase")
  in
  let count =
    Arg.(value & opt int 6 & info [ "count" ] ~doc:"sampled inputs for the characterize phase")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "write spans as Chrome trace_event JSONL (chrome://tracing, \
             Perfetto); - for stdout")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"write the metrics snapshot as JSON; - for stdout")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "write the metrics registry in Prometheus text exposition \
             format; - for stdout")
  in
  Term.(
    const profile_cmd $ file $ shots $ count $ seed_arg $ trace $ metrics
    $ prom)

let verify_term =
  let assumes =
    Arg.(value & opt_all string [] & info [ "assume" ] ~docv:"SPEC" ~doc:"assumption predicate")
  in
  let guarantees =
    Arg.(value & opt_all string [] & info [ "guarantee" ] ~docv:"SPEC" ~doc:"guarantee predicate")
  in
  let count =
    Arg.(value & opt int 0 & info [ "count" ] ~doc:"sampled inputs (0 = Theorem 2 budget)")
  in
  let solver =
    Arg.(value & opt string "qp" & info [ "solver" ] ~doc:"qp | sgd | anneal | genetic")
  in
  let budget =
    Arg.(
      value
      & opt string "fixed:2048"
      & info [ "budget" ] ~docv:"SPEC"
          ~doc:
            "shot budget for expect pragmas: fixed:N, or seq:ALPHA,BETA,MAX \
             for a sequential (SPRT) budget with early stopping")
  in
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "memoize characterization/verdicts in the content-addressed \
             cache (in-memory; set MORPHQPV_CACHE_DIR for persistence \
             across runs)")
  in
  let certify =
    certify_flag
      "translation-validate the transpile pipeline before verifying; a \
       failed certificate aborts with MQ021 and exit status 1"
  in
  Term.(
    const verify_cmd $ file_arg $ assumes $ guarantees $ count $ solver
    $ seed_arg $ budget $ cache $ certify)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/morphqpv.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"use loopback TCP on PORT instead of the Unix socket")

let serve_term =
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "persist the shared cache to DIR (default: MORPHQPV_CACHE_DIR \
             when set, else in-memory only)")
  in
  let cache_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-mb" ] ~docv:"MB" ~doc:"in-memory cache budget in MiB")
  in
  let certify =
    certify_flag
      "translation-validate the transpile pipeline on every verify request \
       (individual requests can also opt in with a certify:true param)"
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"DEST"
          ~doc:
            "structured JSONL log destination: a file path, stderr, or - \
             for stdout (same as MORPHQPV_LOG)")
  in
  let log_level =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"debug | info | warn | error (default info)")
  in
  Term.(
    const serve_cmd $ socket_arg $ tcp_arg $ cache_dir $ cache_mb $ certify
    $ log $ log_level)

let client_term =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"mini-QASM program (method verify)")
  in
  let method_ =
    Arg.(
      value & opt string ""
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            "ping | stats | metrics | trace | verify | shutdown (default: \
             verify with FILE, ping without)")
  in
  let assumes =
    Arg.(
      value & opt_all string []
      & info [ "assume" ] ~docv:"SPEC" ~doc:"assumption predicate")
  in
  let guarantees =
    Arg.(
      value & opt_all string []
      & info [ "guarantee" ] ~docv:"SPEC" ~doc:"guarantee predicate")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~doc:"sampled inputs (0 = Theorem 2 budget)")
  in
  let solver =
    Arg.(
      value & opt string "qp"
      & info [ "solver" ] ~doc:"qp | sgd | anneal | genetic")
  in
  let budget =
    Arg.(
      value
      & opt string "fixed:2048"
      & info [ "budget" ] ~docv:"SPEC"
          ~doc:"shot budget for expect pragmas (fixed:N | seq:ALPHA,BETA,MAX)")
  in
  let mode =
    Arg.(
      value & opt string "exact"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"characterization mode: exact | tomo:SHOTS | probs:SHOTS")
  in
  let certify =
    certify_flag "ask the daemon to certify the transpile pipeline (MQ021)"
  in
  let request_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-id" ] ~docv:"ID"
          ~doc:
            "name this request (echoed on the terminal line, keys the \
             trace RPC); for method trace: the id of the request to fetch")
  in
  let watch =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:"re-issue the request every SECS seconds until it fails")
  in
  Term.(
    const client_cmd $ socket_arg $ tcp_arg $ method_ $ file $ assumes
    $ guarantees $ count $ solver $ seed_arg $ budget $ mode $ certify
    $ request_id $ watch)

let top_term =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"refresh interval in seconds")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"stop after N refreshes (0 = run until interrupted)")
  in
  Term.(const top_cmd $ socket_arg $ tcp_arg $ interval $ iterations)

let cmds =
  [
    Cmd.v (Cmd.info "info" ~doc:"static program statistics") info_term;
    Cmd.v (Cmd.info "simulate" ~doc:"run a program and print counts/tracepoints") simulate_term;
    Cmd.v (Cmd.info "sample" ~doc:"characterize a program and report accuracy") sample_term;
    Cmd.v (Cmd.info "verify" ~doc:"validate an assume-guarantee assertion") verify_term;
    Cmd.v
      (Cmd.info "optimize" ~doc:"transpile a program and check equivalence")
      optimize_term;
    Cmd.v
      (Cmd.info "certify"
         ~doc:
           "translation-validate the transpile pipeline: every pass emits a \
            certificate, checked by an independent checker")
      certify_term;
    Cmd.v
      (Cmd.info "lint" ~doc:"run static-analysis diagnostics over programs")
      lint_term;
    Cmd.v
      (Cmd.info "profile"
         ~doc:"profile the pipeline phases and dump traces/metrics")
      profile_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "run the verification daemon (line-delimited JSON-RPC, shared \
            incremental cache)")
      serve_term;
    Cmd.v
      (Cmd.info "client" ~doc:"send one request to a running daemon")
      client_term;
    Cmd.v
      (Cmd.info "top"
         ~doc:"live per-RPC request/latency table for a running daemon")
      top_term;
  ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "morphqpv" ~version:"1.0.0"
             ~doc:"Confident quantum program verification via isomorphism")
          cmds))
